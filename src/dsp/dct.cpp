#include "dsp/dct.h"

#include "dsp/dispatch.h"
#include "dsp/kernels.h"
#include "entropy/zigzag.h"

namespace mmsoc::dsp {

// The basis tables live in the dispatch layer (dsp/kernels.h) so every
// SIMD variant multiplies by the same constants; the 1-D and direct forms
// here read them straight from there.

void dct8(std::span<const float, 8> in, std::span<float, 8> out) noexcept {
  const auto& basis = detail::dct_tables().c;
  float tmp[kDctSize];
  for (int u = 0; u < kDctSize; ++u) {
    float acc = 0.0f;
    for (int x = 0; x < kDctSize; ++x) acc += basis[u][x] * in[x];
    tmp[u] = acc;
  }
  for (int u = 0; u < kDctSize; ++u) out[u] = tmp[u];
}

void idct8(std::span<const float, 8> in, std::span<float, 8> out) noexcept {
  const auto& basis = detail::dct_tables().c;
  float tmp[kDctSize];
  for (int x = 0; x < kDctSize; ++x) {
    float acc = 0.0f;
    for (int u = 0; u < kDctSize; ++u) acc += basis[u][x] * in[u];
    tmp[x] = acc;
  }
  for (int x = 0; x < kDctSize; ++x) out[x] = tmp[x];
}

void dct2d_direct(const Block& in, Block& out) noexcept {
  const auto& basis = detail::dct_tables().c;
  for (int v = 0; v < kDctSize; ++v) {
    for (int u = 0; u < kDctSize; ++u) {
      float acc = 0.0f;
      for (int y = 0; y < kDctSize; ++y)
        for (int x = 0; x < kDctSize; ++x)
          acc += basis[v][y] * basis[u][x] * in[y * kDctSize + x];
      out[v * kDctSize + u] = acc;
    }
  }
}

void idct2d_direct(const Block& in, Block& out) noexcept {
  const auto& basis = detail::dct_tables().c;
  for (int y = 0; y < kDctSize; ++y) {
    for (int x = 0; x < kDctSize; ++x) {
      float acc = 0.0f;
      for (int v = 0; v < kDctSize; ++v)
        for (int u = 0; u < kDctSize; ++u)
          acc += basis[v][y] * basis[u][x] * in[v * kDctSize + u];
      out[y * kDctSize + x] = acc;
    }
  }
}

void dct2d(const Block& in, Block& out) noexcept {
  kernels().fdct8x8_f32(in.data(), out.data());
}

void idct2d(const Block& in, Block& out) noexcept {
  kernels().idct8x8_f32(in.data(), out.data());
}

void dct2d_q15(const BlockI16& in, BlockI16& out) noexcept {
  kernels().fdct8x8_q15(in.data(), out.data());
}

void idct2d_q15(const BlockI16& in, BlockI16& out) noexcept {
  kernels().idct8x8_q15(in.data(), out.data());
}

double energy_compaction(const Block& coeffs, int k) noexcept {
  double total = 0.0, head = 0.0;
  for (int i = 0; i < kDctSize * kDctSize; ++i) {
    const int idx = entropy::kZigZag8x8[i];
    const double e = static_cast<double>(coeffs[idx]) * coeffs[idx];
    total += e;
    if (i < k) head += e;
  }
  return total > 0.0 ? head / total : 1.0;
}

}  // namespace mmsoc::dsp
