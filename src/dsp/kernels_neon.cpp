// NEON kernel slot — guarded stub. The dispatch plumbing (level enum,
// table registration, CPU check) is wired for AArch64, but the bodies
// below currently alias the scalar reference; real NEON intrinsics land
// when the project has ARM hardware in CI to verify the bit-exactness
// contract on. Keeping the table registered means MMSOC_SIMD=neon and the
// fuzz suite exercise the dispatch path on ARM builds today.
#if defined(MMSOC_SIMD_NEON) && defined(__ARM_NEON)

#include "dsp/kernels.h"

namespace mmsoc::dsp::detail {

const KernelTable kKernelsNeon = {
    SimdLevel::kNeon,    &sad16_scalar,      &fdct8x8_f32_scalar,
    &idct8x8_f32_scalar, &fdct8x8_q15_scalar, &idct8x8_q15_scalar,
    &quantize64_scalar,  &dequantize64_scalar, &fb_analyze_scalar,
    &fb_synth_scalar};

}  // namespace mmsoc::dsp::detail

#endif  // MMSOC_SIMD_NEON && __ARM_NEON
