// Discrete wavelet transforms (lifting scheme).
//
// Section 3: "Wavelets are a frequency representation ... represent the
// frequency content hierarchically and do not suffer from the edge
// artifacts common to DCT-based encoding. Wavelets [have] been
// incorporated into JPEG2000." We implement the two JPEG2000 filter pairs:
// the reversible integer 5/3 (lossless) and the irreversible 9/7 (lossy),
// as 1-D lifting passes composed into multi-level 2-D transforms with
// symmetric boundary extension (which is what avoids the edge artifacts).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mmsoc::dsp {

/// One level of the reversible Le Gall 5/3 integer lifting transform,
/// in place: first half of `data` receives the low band, second half the
/// high band. Exact integer reversibility. `data.size()` must be even
/// and >= 2.
void dwt53_forward(std::span<std::int32_t> data);

/// Inverse of dwt53_forward (exact).
void dwt53_inverse(std::span<std::int32_t> data);

/// One level of the irreversible CDF 9/7 lifting transform (float).
void dwt97_forward(std::span<float> data);

/// Inverse of dwt97_forward (up to float rounding).
void dwt97_inverse(std::span<float> data);

/// Multi-level 2-D 5/3 transform of a `width` x `height` image in
/// row-major order, `levels` dyadic decompositions applied to the
/// progressively smaller LL band. Width and height must be divisible by
/// 2^levels.
void dwt53_2d_forward(std::span<std::int32_t> image, int width, int height,
                      int levels);
void dwt53_2d_inverse(std::span<std::int32_t> image, int width, int height,
                      int levels);

/// Multi-level 2-D 9/7 transform (float), same layout rules as 5/3.
void dwt97_2d_forward(std::span<float> image, int width, int height,
                      int levels);
void dwt97_2d_inverse(std::span<float> image, int width, int height,
                      int levels);

/// Fraction of total energy in the LL band after `levels` decompositions —
/// the hierarchical energy compaction the paper attributes to wavelets.
[[nodiscard]] double ll_energy_fraction(std::span<const float> image, int width,
                                        int height, int levels) noexcept;

}  // namespace mmsoc::dsp
