#include "dsp/filter.h"

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/mathutil.h"

namespace mmsoc::dsp {

FirFilter::FirFilter(std::vector<double> taps)
    : taps_(std::move(taps)), delay_(taps_.size(), 0.0) {
  if (taps_.empty()) {
    taps_.push_back(1.0);
    delay_.push_back(0.0);
  }
}

double FirFilter::process(double x) noexcept {
  delay_[head_] = x;
  double acc = 0.0;
  std::size_t idx = head_;
  for (const double tap : taps_) {
    acc += tap * delay_[idx];
    idx = (idx == 0) ? delay_.size() - 1 : idx - 1;
  }
  head_ = (head_ + 1) % delay_.size();
  return acc;
}

void FirFilter::process(std::span<double> samples) noexcept {
  for (auto& s : samples) s = process(s);
}

void FirFilter::reset() noexcept {
  std::fill(delay_.begin(), delay_.end(), 0.0);
  head_ = 0;
}

std::vector<double> design_lowpass_fir(std::size_t num_taps, double cutoff) {
  if (num_taps == 0) num_taps = 1;
  std::vector<double> taps(num_taps);
  const double center = (static_cast<double>(num_taps) - 1.0) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < num_taps; ++i) {
    const double t = static_cast<double>(i) - center;
    const double x = 2.0 * common::kPi * cutoff * t;
    const double sinc = (std::abs(t) < 1e-12) ? 2.0 * cutoff
                                              : std::sin(x) / (common::kPi * t);
    const double window =
        0.54 - 0.46 * std::cos(2.0 * common::kPi * static_cast<double>(i) /
                               (static_cast<double>(num_taps) - 1.0));
    taps[i] = sinc * (num_taps > 1 ? window : 1.0);
    sum += taps[i];
  }
  // Normalize DC gain to 1.
  if (sum != 0.0) {
    for (auto& t : taps) t /= sum;
  }
  return taps;
}

namespace {

Biquad::Coeffs normalize(double b0, double b1, double b2, double a0, double a1,
                         double a2) {
  Biquad::Coeffs c;
  c.b0 = b0 / a0;
  c.b1 = b1 / a0;
  c.b2 = b2 / a0;
  c.a1 = a1 / a0;
  c.a2 = a2 / a0;
  return c;
}

}  // namespace

Biquad::Coeffs Biquad::lowpass(double f, double q) {
  const double w0 = 2.0 * common::kPi * f;
  const double cw = std::cos(w0), sw = std::sin(w0);
  const double alpha = sw / (2.0 * q);
  return normalize((1 - cw) / 2, 1 - cw, (1 - cw) / 2, 1 + alpha, -2 * cw,
                   1 - alpha);
}

Biquad::Coeffs Biquad::highpass(double f, double q) {
  const double w0 = 2.0 * common::kPi * f;
  const double cw = std::cos(w0), sw = std::sin(w0);
  const double alpha = sw / (2.0 * q);
  return normalize((1 + cw) / 2, -(1 + cw), (1 + cw) / 2, 1 + alpha, -2 * cw,
                   1 - alpha);
}

Biquad::Coeffs Biquad::bandpass(double f, double q) {
  const double w0 = 2.0 * common::kPi * f;
  const double cw = std::cos(w0), sw = std::sin(w0);
  const double alpha = sw / (2.0 * q);
  return normalize(alpha, 0.0, -alpha, 1 + alpha, -2 * cw, 1 - alpha);
}

Biquad::Coeffs Biquad::notch(double f, double q) {
  const double w0 = 2.0 * common::kPi * f;
  const double cw = std::cos(w0), sw = std::sin(w0);
  const double alpha = sw / (2.0 * q);
  return normalize(1.0, -2 * cw, 1.0, 1 + alpha, -2 * cw, 1 - alpha);
}

Biquad::Coeffs Biquad::lead_lag(double gain, double zero_freq,
                                double pole_freq) {
  // s-domain: G(s) = gain * (s/wz + 1) / (s/wp + 1), bilinear transform
  // with T = 1 (frequencies already normalized to sample rate).
  const double wz = 2.0 * common::kPi * zero_freq;
  const double wp = 2.0 * common::kPi * pole_freq;
  // Pre-warp is unnecessary at the low normalized frequencies servo loops use.
  const double k = 2.0;  // 2/T with T=1
  const double b0 = gain * (k / wz + 1.0);
  const double b1 = gain * (1.0 - k / wz);
  const double a0 = k / wp + 1.0;
  const double a1 = 1.0 - k / wp;
  return normalize(b0, b1, 0.0, a0, a1, 0.0);
}

void BiquadQ15::set_coeffs(const Biquad::Coeffs& c) noexcept {
  const auto q = [](double v) {
    return static_cast<std::int32_t>(
        std::lround(v * static_cast<double>(1 << kCoefFrac)));
  };
  b0_ = q(c.b0);
  b1_ = q(c.b1);
  b2_ = q(c.b2);
  a1_ = q(c.a1);
  a2_ = q(c.a2);
}

common::Q15 BiquadQ15::process(common::Q15 x) noexcept {
  const std::int32_t xr = x.raw();
  std::int64_t acc = std::int64_t{b0_} * xr + std::int64_t{b1_} * x1_ +
                     std::int64_t{b2_} * x2_ - std::int64_t{a1_} * y1_ -
                     std::int64_t{a2_} * y2_;
  // Round the Q13 coefficient scale back out.
  acc += (acc >= 0) ? (std::int64_t{1} << (kCoefFrac - 1))
                    : -(std::int64_t{1} << (kCoefFrac - 1));
  std::int64_t y = acc >> kCoefFrac;
  // Saturate to Q15 range.
  constexpr std::int64_t kMax = std::numeric_limits<std::int32_t>::max();
  constexpr std::int64_t kMin = std::numeric_limits<std::int32_t>::min();
  if (y > kMax) y = kMax;
  if (y < kMin) y = kMin;
  x2_ = x1_;
  x1_ = xr;
  y2_ = y1_;
  y1_ = static_cast<std::int32_t>(y);
  return common::Q15::from_raw(y1_);
}

void BiquadQ15::reset() noexcept { x1_ = x2_ = y1_ = y2_ = 0; }

}  // namespace mmsoc::dsp
