#include "audio/psycho.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/mathutil.h"
#include "dsp/fft.h"
#include "dsp/window.h"

namespace mmsoc::audio {
namespace {

// Choose the FFT size for a granule: largest power of two <= n, capped at
// 1024, floored at 64.
std::size_t pick_fft_size(std::size_t n) noexcept {
  std::size_t size = 64;
  while (size * 2 <= n && size * 2 <= 1024) size *= 2;
  return size;
}

}  // namespace

PsychoModel::PsychoModel(double sample_rate) noexcept
    : sample_rate_(sample_rate) {}

double PsychoModel::absolute_threshold_db(double hz) noexcept {
  // Terhardt's approximation of the threshold in quiet, shifted so that
  // 0 dB corresponds to a full-scale sine at the most sensitive ear
  // frequency (~3.3 kHz). Values well below any codable signal level.
  const double f = std::max(hz, 20.0) / 1000.0;
  const double spl = 3.64 * std::pow(f, -0.8) -
                     6.5 * std::exp(-0.6 * (f - 3.3) * (f - 3.3)) +
                     1e-3 * std::pow(f, 4.0);
  return spl - 96.0;  // re-reference to digital full scale
}

PsychoResult PsychoModel::analyze(std::span<const double> samples) const {
  PsychoResult r;
  r.signal_db.fill(-120.0);
  r.threshold_db.fill(-120.0);
  r.smr_db.fill(0.0);

  const std::size_t n = pick_fft_size(samples.size());
  // Windowed power spectrum.
  const auto window = dsp::make_window(dsp::WindowKind::kHann, n);
  std::vector<double> buf(n, 0.0);
  for (std::size_t i = 0; i < n && i < samples.size(); ++i) {
    buf[i] = samples[i] * window[i];
  }
  const auto power = dsp::power_spectrum(buf, n);

  // Spectral flatness (geometric / arithmetic mean of power): the
  // tonality estimate. Pure tones -> ~0, white noise -> ~1.
  double log_sum = 0.0, lin_sum = 0.0;
  std::size_t bins = 0;
  for (std::size_t i = 1; i < power.size(); ++i) {  // skip DC
    const double p = std::max(power[i], 1e-20);
    log_sum += std::log(p);
    lin_sum += p;
    ++bins;
  }
  const double gmean = std::exp(log_sum / static_cast<double>(bins));
  const double amean = lin_sum / static_cast<double>(bins);
  r.spectral_flatness = amean > 0 ? std::min(1.0, gmean / amean) : 1.0;

  // Fold FFT bins into the 32 subbands (uniform split of [0, fs/2]).
  std::array<double, kSubbands> band_power{};
  for (std::size_t i = 1; i < power.size(); ++i) {
    const std::size_t band =
        std::min<std::size_t>(kSubbands - 1, (i * kSubbands) / power.size());
    band_power[band] += power[i];
  }
  for (int k = 0; k < kSubbands; ++k) {
    // Normalize so a full-scale sine reads ~0 dB.
    r.signal_db[static_cast<std::size_t>(k)] =
        common::to_db(band_power[static_cast<std::size_t>(k)] /
                      (static_cast<double>(n) / 8.0));
  }

  // Masking offset: tonal maskers mask less (listeners resolve them), noise
  // maskers mask more. Interpolate between the model-1 style offsets.
  const double tonal_offset = 14.5;  // dB below a tonal masker
  const double noise_offset = 6.0;   // dB below a noise masker
  const double offset =
      tonal_offset * (1.0 - r.spectral_flatness) + noise_offset * r.spectral_flatness;

  // Spreading function: masking decays ~12 dB per subband toward lower
  // bands and ~25 dB per subband toward higher bands (masking spreads
  // upward in frequency more readily).
  constexpr double kSlopeUp = 12.0;
  constexpr double kSlopeDown = 25.0;
  for (int k = 0; k < kSubbands; ++k) {
    double thr = -120.0;
    for (int j = 0; j < kSubbands; ++j) {
      const double dist = static_cast<double>(k - j);
      const double slope = dist >= 0 ? kSlopeUp : kSlopeDown;
      const double contrib =
          r.signal_db[static_cast<std::size_t>(j)] - offset - slope * std::abs(dist);
      thr = std::max(thr, contrib);
    }
    // Floor with the absolute threshold of hearing at the band center.
    const double hz = (static_cast<double>(k) + 0.5) * sample_rate_ /
                      (2.0 * kSubbands);
    thr = std::max(thr, absolute_threshold_db(hz));
    r.threshold_db[static_cast<std::size_t>(k)] = thr;
    r.smr_db[static_cast<std::size_t>(k)] =
        r.signal_db[static_cast<std::size_t>(k)] - thr;
  }
  return r;
}

}  // namespace mmsoc::audio
