#include "audio/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/mathutil.h"

namespace mmsoc::audio {

double snr_db(std::span<const double> ref,
              std::span<const double> test) noexcept {
  const std::size_t n = std::min(ref.size(), test.size());
  if (n == 0) return 0.0;
  double sig = 0.0, noise = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sig += ref[i] * ref[i];
    const double d = ref[i] - test[i];
    noise += d * d;
  }
  if (noise <= 0.0) return 99.0;
  return std::min(99.0, common::to_db(sig / noise));
}

double segmental_snr_db(std::span<const double> ref,
                        std::span<const double> test,
                        std::size_t segment) noexcept {
  const std::size_t n = std::min(ref.size(), test.size());
  if (n == 0 || segment == 0) return 0.0;
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t start = 0; start + segment <= n; start += segment) {
    double sig = 0.0, noise = 0.0;
    for (std::size_t i = start; i < start + segment; ++i) {
      sig += ref[i] * ref[i];
      const double d = ref[i] - test[i];
      noise += d * d;
    }
    if (sig < 1e-12) continue;  // skip silent segments
    const double s = noise <= 0.0 ? 99.0 : std::min(99.0, common::to_db(sig / noise));
    sum += std::clamp(s, -10.0, 99.0);
    ++count;
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

std::size_t best_alignment(std::span<const double> ref,
                           std::span<const double> test,
                           std::size_t max_shift) noexcept {
  std::size_t best = 0;
  double best_corr = -1e300;
  for (std::size_t shift = 0; shift <= max_shift; ++shift) {
    double corr = 0.0;
    const std::size_t n = std::min(ref.size(), test.size() - std::min(test.size(), shift));
    for (std::size_t i = 0; i + shift < test.size() && i < n; ++i) {
      corr += ref[i] * test[i + shift];
    }
    if (corr > best_corr) {
      best_corr = corr;
      best = shift;
    }
  }
  return best;
}

}  // namespace mmsoc::audio
