#include "audio/source.h"

#include <cmath>

#include "common/mathutil.h"
#include "common/rng.h"
#include "dsp/filter.h"

namespace mmsoc::audio {

std::vector<double> make_speech(std::size_t samples, double sample_rate,
                                std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> out(samples, 0.0);

  // Two formant resonators (rough /a/ vowel) and an unvoiced highpass.
  dsp::Biquad formant1(dsp::Biquad::bandpass(700.0 / sample_rate, 5.0));
  dsp::Biquad formant2(dsp::Biquad::bandpass(1150.0 / sample_rate, 6.0));
  dsp::Biquad hiss(dsp::Biquad::highpass(2500.0 / sample_rate, 0.8));

  const std::size_t segment = static_cast<std::size_t>(sample_rate * 0.15);
  double phase = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const bool voiced = (i / std::max<std::size_t>(segment, 1)) % 2 == 0;
    // Pitch varies per speaker (seed), 95..135 Hz.
    const double base_f0 = 95.0 + static_cast<double>(seed % 41);
    double x;
    if (voiced) {
      // Glottal pulse train with vibrato.
      const double vibrato =
          1.0 + 0.03 * std::sin(2.0 * common::kPi * 5.0 * static_cast<double>(i) / sample_rate);
      const double f0 = base_f0 * vibrato;
      phase += f0 / sample_rate;
      if (phase >= 1.0) phase -= 1.0;
      // Sharp pulse: high sample at pulse instant, decay elsewhere.
      const double pulse = std::exp(-40.0 * phase);
      x = formant1.process(pulse) * 1.8 + formant2.process(pulse) * 1.1;
    } else {
      const double n = rng.next_double_in(-1.0, 1.0);
      x = hiss.process(n) * 0.18;
    }
    out[i] = std::clamp(x, -0.95, 0.95);
  }
  return out;
}

std::vector<double> make_music(std::size_t samples, double sample_rate,
                               std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> out(samples, 0.0);

  // Chord progression over A minor-ish roots, 0.5 s per chord.
  const double roots[] = {220.0, 174.61, 196.0, 261.63};
  const std::size_t chord_len = static_cast<std::size_t>(sample_rate * 0.5);
  const std::size_t beat_len = static_cast<std::size_t>(sample_rate * 0.25);

  for (std::size_t i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i) / sample_rate;
    const double root = roots[(i / std::max<std::size_t>(chord_len, 1)) % 4];
    double x = 0.0;
    // Root + fifth + octave with harmonic rolloff.
    for (int h = 1; h <= 5; ++h) {
      const double a = 0.22 / h;
      x += a * std::sin(2.0 * common::kPi * root * h * t);
      x += 0.6 * a * std::sin(2.0 * common::kPi * root * 1.5 * h * t);
    }
    // Percussive transient at each beat: exponentially decaying noise.
    const std::size_t into_beat = i % std::max<std::size_t>(beat_len, 1);
    if (into_beat < sample_rate * 0.02) {
      const double env = std::exp(-static_cast<double>(into_beat) /
                                  (sample_rate * 0.004));
      x += 0.35 * env * rng.next_double_in(-1.0, 1.0);
    }
    x += 0.01 * rng.next_double_in(-1.0, 1.0);
    out[i] = std::clamp(0.5 * x, -0.95, 0.95);
  }
  return out;
}

std::vector<double> make_tone(std::size_t samples, double sample_rate,
                              double hz, double amplitude) {
  std::vector<double> out(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    out[i] = amplitude *
             std::sin(2.0 * common::kPi * hz * static_cast<double>(i) / sample_rate);
  }
  return out;
}

std::vector<double> make_noise(std::size_t samples, double amplitude,
                               std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<double> out(samples);
  for (auto& v : out) v = amplitude * rng.next_double_in(-1.0, 1.0);
  return out;
}

std::vector<double> make_masking_pair(std::size_t samples, double sample_rate,
                                      double masker_hz, double probe_hz,
                                      double probe_amplitude) {
  std::vector<double> out(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i) / sample_rate;
    out[i] = 0.7 * std::sin(2.0 * common::kPi * masker_hz * t) +
             probe_amplitude * std::sin(2.0 * common::kPi * probe_hz * t);
  }
  return out;
}

std::vector<std::int16_t> to_pcm16(const std::vector<double>& samples) {
  std::vector<std::int16_t> out(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    out[i] = common::clamp_s16(static_cast<int>(std::lround(samples[i] * 32767.0)));
  }
  return out;
}

std::vector<double> from_pcm16(const std::vector<std::int16_t>& pcm) {
  std::vector<double> out(pcm.size());
  for (std::size_t i = 0; i < pcm.size(); ++i) {
    out[i] = static_cast<double>(pcm[i]) / 32767.0;
  }
  return out;
}

}  // namespace mmsoc::audio
