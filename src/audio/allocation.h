// Bit allocation for the subband coder (feeds Fig. 2's "QUANTIZER/CODER").
//
// Greedy water-filling on signal-to-mask ratios: each iteration gives one
// more bit (≈6.02 dB of quantization SNR) to the subband whose
// mask-to-noise ratio is currently worst. Subbands whose SMR is already
// negative (fully masked) receive no bits at all — this is precisely the
// paper's "eliminate masked tones".
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "audio/filterbank.h"

namespace mmsoc::audio {

inline constexpr int kMaxBitsPerSample = 15;

/// Bits per subband sample (0 = subband not transmitted).
using Allocation = std::array<std::uint8_t, kSubbands>;

/// Distribute `bit_pool` bits (per block of one sample from each subband)
/// given per-subband SMRs in dB. `samples_per_band` scales the cost of a
/// bit in one band (a granule carries several samples per band).
///
/// Phase 1 satisfies masking: bits flow to the band with the worst
/// mask-to-noise ratio until every unmasked band reaches MNR >= 0.
/// Phase 2 (only when `signal_db` is non-empty) spends any leftover pool
/// maximizing plain SNR over bands that carry signal — matching real
/// encoders, which never leave paid-for channel bits unused.
[[nodiscard]] Allocation allocate_bits(
    const std::array<double, kSubbands>& smr_db, int bit_pool,
    int samples_per_band = 1,
    std::span<const double> signal_db = {}) noexcept;

/// Mask-to-noise ratio achieved by an allocation (min over active bands);
/// higher is better, >= 0 means all quantization noise is masked.
[[nodiscard]] double worst_mnr_db(const std::array<double, kSubbands>& smr_db,
                                  const Allocation& alloc) noexcept;

}  // namespace mmsoc::audio
