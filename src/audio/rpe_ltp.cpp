#include "audio/rpe_ltp.h"

#include <algorithm>
#include <cmath>

#include "common/bitstream.h"
#include "common/mathutil.h"

namespace mmsoc::audio {
namespace {

using common::BitReader;
using common::BitWriter;
using common::Result;
using common::StatusCode;

constexpr double kPreEmphasis = 0.86;
constexpr double kLarRange = 5.0;  // LARs quantized uniformly in [-5, 5]
constexpr int kLarBits = 6;
// The four LTP gain levels of GSM 06.10.
constexpr std::array<double, 4> kLtpGains = {0.10, 0.35, 0.65, 1.00};

int quantize_lar(double lar) noexcept {
  const int levels = (1 << kLarBits) - 1;
  const double t = std::clamp((lar + kLarRange) / (2 * kLarRange), 0.0, 1.0);
  return static_cast<int>(std::lround(t * levels));
}

double dequantize_lar(int idx) noexcept {
  const int levels = (1 << kLarBits) - 1;
  return (static_cast<double>(idx) / levels) * 2 * kLarRange - kLarRange;
}

int quantize_ltp_gain(double g) noexcept {
  int best = 0;
  double best_err = 1e9;
  for (std::size_t i = 0; i < kLtpGains.size(); ++i) {
    const double err = std::abs(g - kLtpGains[i]);
    if (err < best_err) {
      best_err = err;
      best = static_cast<int>(i);
    }
  }
  return best;
}

// 6-bit logarithmic block-maximum quantizer.
int quantize_xmax(double xmax) noexcept {
  if (xmax < 1.0) return 0;
  const double idx = 64.0 * std::log2(xmax) / 16.0;  // covers up to 2^16
  return std::clamp(static_cast<int>(std::lround(idx)), 0, 63);
}

double dequantize_xmax(int idx) noexcept {
  return std::pow(2.0, static_cast<double>(idx) * 16.0 / 64.0);
}

// LPC a-coefficients from reflection coefficients (Levinson recursion).
void lpc_from_reflection(std::span<const double> refl,
                         std::span<double> lpc) noexcept {
  std::array<double, kLpcOrder> a{}, prev{};
  for (int i = 0; i < static_cast<int>(refl.size()); ++i) {
    a[static_cast<std::size_t>(i)] = refl[static_cast<std::size_t>(i)];
    for (int j = 0; j < i; ++j) {
      a[static_cast<std::size_t>(j)] =
          prev[static_cast<std::size_t>(j)] -
          refl[static_cast<std::size_t>(i)] * prev[static_cast<std::size_t>(i - 1 - j)];
    }
    prev = a;
  }
  for (std::size_t i = 0; i < lpc.size(); ++i) lpc[i] = a[i];
}

}  // namespace

bool levinson_durbin(std::span<const double> autocorr,
                     std::span<double> lpc_out,
                     std::span<double> reflection_out) noexcept {
  const int order = static_cast<int>(lpc_out.size());
  if (autocorr.size() < static_cast<std::size_t>(order + 1)) return false;
  double err = autocorr[0];
  if (err <= 0.0) return false;

  std::array<double, kLpcOrder> a{}, prev{};
  for (int i = 0; i < order; ++i) {
    double acc = autocorr[static_cast<std::size_t>(i + 1)];
    for (int j = 0; j < i; ++j) {
      acc -= prev[static_cast<std::size_t>(j)] * autocorr[static_cast<std::size_t>(i - j)];
    }
    double k = acc / err;
    k = std::clamp(k, -0.97, 0.97);  // guarantee a stable synthesis filter
    reflection_out[static_cast<std::size_t>(i)] = k;
    a[static_cast<std::size_t>(i)] = k;
    for (int j = 0; j < i; ++j) {
      a[static_cast<std::size_t>(j)] = prev[static_cast<std::size_t>(j)] -
                                       k * prev[static_cast<std::size_t>(i - 1 - j)];
    }
    prev = a;
    err *= (1.0 - k * k);
    if (err <= 0.0) return false;
  }
  for (int i = 0; i < order; ++i) lpc_out[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i)];
  return true;
}

double lar_from_reflection(double r) noexcept {
  r = std::clamp(r, -0.9999, 0.9999);
  return std::log10((1.0 + r) / (1.0 - r)) * 20.0 / 4.0;  // compressed log
}

double reflection_from_lar(double lar) noexcept {
  const double x = std::pow(10.0, lar * 4.0 / 20.0);
  return (x - 1.0) / (x + 1.0);
}

void RpeLtpEncoder::reset() {
  pre_state_ = 0.0;
  st_history_.fill(0.0);
  std::fill(residual_history_.begin(), residual_history_.end(), 0.0);
}

std::vector<std::uint8_t> RpeLtpEncoder::encode(
    std::span<const std::int16_t, kGsmFrameSamples> pcm) {
  // ---- Pre-emphasis.
  std::array<double, kGsmFrameSamples> s;
  for (int n = 0; n < kGsmFrameSamples; ++n) {
    const double x = static_cast<double>(pcm[static_cast<std::size_t>(n)]);
    s[static_cast<std::size_t>(n)] = x - kPreEmphasis * pre_state_;
    pre_state_ = x;
  }

  // ---- LPC analysis on the whole frame.
  std::array<double, kLpcOrder + 1> autocorr{};
  for (int lag = 0; lag <= kLpcOrder; ++lag) {
    double acc = 0.0;
    for (int n = lag; n < kGsmFrameSamples; ++n) {
      acc += s[static_cast<std::size_t>(n)] * s[static_cast<std::size_t>(n - lag)];
    }
    autocorr[static_cast<std::size_t>(lag)] = acc;
  }
  std::array<double, kLpcOrder> lpc{}, refl{};
  std::array<int, kLpcOrder> lar_idx{};
  const bool ok = levinson_durbin(autocorr, lpc, refl);
  if (!ok) {
    refl.fill(0.0);
  }
  // Quantize LARs, then rebuild the *quantized* filter, which both ends use.
  for (int i = 0; i < kLpcOrder; ++i) {
    lar_idx[static_cast<std::size_t>(i)] =
        quantize_lar(lar_from_reflection(refl[static_cast<std::size_t>(i)]));
  }
  std::array<double, kLpcOrder> refl_q{}, lpc_q{};
  for (int i = 0; i < kLpcOrder; ++i) {
    refl_q[static_cast<std::size_t>(i)] =
        reflection_from_lar(dequantize_lar(lar_idx[static_cast<std::size_t>(i)]));
  }
  lpc_from_reflection(refl_q, lpc_q);

  // ---- Short-term analysis filter: d[n] = s[n] - sum a_i s[n-i].
  std::array<double, kGsmFrameSamples> d;
  for (int n = 0; n < kGsmFrameSamples; ++n) {
    double pred = 0.0;
    for (int i = 0; i < kLpcOrder; ++i) {
      const int idx = n - 1 - i;
      const double past = idx >= 0 ? s[static_cast<std::size_t>(idx)]
                                   : st_history_[static_cast<std::size_t>(-idx - 1)];
      pred += lpc_q[static_cast<std::size_t>(i)] * past;
    }
    d[static_cast<std::size_t>(n)] = s[static_cast<std::size_t>(n)] - pred;
  }
  for (int i = 0; i < kLpcOrder; ++i) {
    st_history_[static_cast<std::size_t>(i)] =
        s[static_cast<std::size_t>(kGsmFrameSamples - 1 - i)];
  }

  // ---- Per-subframe LTP + RPE.
  BitWriter w;
  for (int i = 0; i < kLpcOrder; ++i) {
    w.put_bits(static_cast<std::uint64_t>(lar_idx[static_cast<std::size_t>(i)]), kLarBits);
  }

  for (int sf = 0; sf < kGsmFrameSamples / kGsmSubframe; ++sf) {
    const int base = sf * kGsmSubframe;

    // Long-term predictor: search the reconstructed residual history.
    // residual_history_ holds the last kMaxLag reconstructed residual
    // samples, index kMaxLag-1 = most recent.
    int best_lag = kMinLag;
    double best_corr = 0.0, best_energy = 1.0;
    for (int lag = kMinLag; lag <= kMaxLag; ++lag) {
      double corr = 0.0, energy = 0.0;
      for (int n = 0; n < kGsmSubframe; ++n) {
        // d'[base + n - lag]: negative index reaches into history.
        const int rel = base + n - lag;
        const double past =
            rel >= 0 ? d[static_cast<std::size_t>(rel)]  // within current frame (already reconstructed below)
                     : residual_history_[residual_history_.size() +
                                         static_cast<std::size_t>(rel)];
        corr += d[static_cast<std::size_t>(base + n)] * past;
        energy += past * past;
      }
      if (energy > 0 && corr / std::sqrt(energy) >
                            best_corr / std::sqrt(best_energy)) {
        best_corr = corr;
        best_energy = energy;
        best_lag = lag;
      }
    }
    const double gain_raw =
        best_energy > 0 ? std::clamp(best_corr / best_energy, 0.0, 1.0) : 0.0;
    const int gain_idx = quantize_ltp_gain(gain_raw);
    const double gain = kLtpGains[static_cast<std::size_t>(gain_idx)];

    // LTP residual e[n].
    std::array<double, kGsmSubframe> e;
    std::array<double, kGsmSubframe> ltp_pred;
    for (int n = 0; n < kGsmSubframe; ++n) {
      const int rel = base + n - best_lag;
      const double past =
          rel >= 0 ? d[static_cast<std::size_t>(rel)]
                   : residual_history_[residual_history_.size() +
                                       static_cast<std::size_t>(rel)];
      ltp_pred[static_cast<std::size_t>(n)] = gain * past;
      e[static_cast<std::size_t>(n)] =
          d[static_cast<std::size_t>(base + n)] - ltp_pred[static_cast<std::size_t>(n)];
    }

    // Regular pulse excitation: best 1-of-3 phase, 13 pulses.
    int best_phase = 0;
    double best_e = -1.0;
    for (int m = 0; m < 3; ++m) {
      double energy = 0.0;
      for (int p = 0; p < kRpePulses; ++p) {
        const int n = m + 3 * p;
        if (n < kGsmSubframe) {
          energy += e[static_cast<std::size_t>(n)] * e[static_cast<std::size_t>(n)];
        }
      }
      if (energy > best_e) {
        best_e = energy;
        best_phase = m;
      }
    }
    double xmax = 0.0;
    for (int p = 0; p < kRpePulses; ++p) {
      const int n = best_phase + 3 * p;
      if (n < kGsmSubframe) {
        xmax = std::max(xmax, std::abs(e[static_cast<std::size_t>(n)]));
      }
    }
    const int xmax_idx = quantize_xmax(xmax);
    const double xmax_q = dequantize_xmax(xmax_idx);

    w.put_bits(static_cast<std::uint64_t>(best_lag - kMinLag), 7);
    w.put_bits(static_cast<std::uint64_t>(gain_idx), 2);
    w.put_bits(static_cast<std::uint64_t>(best_phase), 2);
    w.put_bits(static_cast<std::uint64_t>(xmax_idx), 6);

    // 3-bit pulse amplitudes, and the reconstructed excitation.
    std::array<double, kGsmSubframe> e_rec{};
    for (int p = 0; p < kRpePulses; ++p) {
      const int n = best_phase + 3 * p;
      double v = 0.0;
      if (n < kGsmSubframe && xmax_q > 0) {
        v = std::clamp(e[static_cast<std::size_t>(n)] / xmax_q, -1.0, 1.0);
      }
      const int q = std::clamp(static_cast<int>(std::lround(v * 3.0)), -3, 3);
      w.put_bits(static_cast<std::uint64_t>(q + 3), 3);
      if (n < kGsmSubframe) {
        e_rec[static_cast<std::size_t>(n)] = (static_cast<double>(q) / 3.0) * xmax_q;
      }
    }

    // Reconstruct the subframe residual (encoder-side copy of the decoder)
    // and overwrite d[] so later subframes predict from reconstructed data.
    for (int n = 0; n < kGsmSubframe; ++n) {
      d[static_cast<std::size_t>(base + n)] =
          e_rec[static_cast<std::size_t>(n)] + ltp_pred[static_cast<std::size_t>(n)];
    }
  }

  // Roll the reconstructed residual history forward.
  for (int n = 0; n < kMaxLag; ++n) {
    residual_history_[static_cast<std::size_t>(n)] =
        d[static_cast<std::size_t>(kGsmFrameSamples - kMaxLag + n)];
  }

  auto bytes = w.take();
  bytes.resize(kGsmFrameBytes, 0);
  return bytes;
}

void RpeLtpDecoder::reset() {
  de_state_ = 0.0;
  st_history_.fill(0.0);
  std::fill(residual_history_.begin(), residual_history_.end(), 0.0);
}

Result<std::array<std::int16_t, kGsmFrameSamples>> RpeLtpDecoder::decode(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kGsmFrameBytes) {
    return Result<std::array<std::int16_t, kGsmFrameSamples>>(
        StatusCode::kCorruptData, "short GSM frame");
  }
  BitReader r(bytes);

  std::array<double, kLpcOrder> refl_q{}, lpc_q{};
  for (int i = 0; i < kLpcOrder; ++i) {
    refl_q[static_cast<std::size_t>(i)] = reflection_from_lar(
        dequantize_lar(static_cast<int>(r.get_bits(kLarBits))));
  }
  lpc_from_reflection(refl_q, lpc_q);

  std::array<double, kGsmFrameSamples> d{};
  for (int sf = 0; sf < kGsmFrameSamples / kGsmSubframe; ++sf) {
    const int base = sf * kGsmSubframe;
    const int lag = static_cast<int>(r.get_bits(7)) + kMinLag;
    const double gain = kLtpGains[r.get_bits(2) & 3];
    const int phase = static_cast<int>(r.get_bits(2));
    const double xmax_q = dequantize_xmax(static_cast<int>(r.get_bits(6)));

    std::array<double, kGsmSubframe> e_rec{};
    for (int p = 0; p < kRpePulses; ++p) {
      const int q = static_cast<int>(r.get_bits(3)) - 3;
      const int n = phase + 3 * p;
      if (n < kGsmSubframe) {
        e_rec[static_cast<std::size_t>(n)] = (static_cast<double>(q) / 3.0) * xmax_q;
      }
    }
    if (!r.ok()) {
      return Result<std::array<std::int16_t, kGsmFrameSamples>>(
          StatusCode::kCorruptData, "truncated GSM frame");
    }
    for (int n = 0; n < kGsmSubframe; ++n) {
      const int rel = base + n - lag;
      const double past =
          rel >= 0 ? d[static_cast<std::size_t>(rel)]
                   : residual_history_[residual_history_.size() +
                                       static_cast<std::size_t>(rel)];
      d[static_cast<std::size_t>(base + n)] =
          e_rec[static_cast<std::size_t>(n)] + gain * past;
    }
  }
  for (int n = 0; n < kMaxLag; ++n) {
    residual_history_[static_cast<std::size_t>(n)] =
        d[static_cast<std::size_t>(kGsmFrameSamples - kMaxLag + n)];
  }

  // Short-term synthesis: s[n] = d[n] + sum a_i s[n-i], then de-emphasis.
  std::array<std::int16_t, kGsmFrameSamples> pcm{};
  std::array<double, kGsmFrameSamples> s{};
  for (int n = 0; n < kGsmFrameSamples; ++n) {
    double acc = d[static_cast<std::size_t>(n)];
    for (int i = 0; i < kLpcOrder; ++i) {
      const int idx = n - 1 - i;
      const double past = idx >= 0 ? s[static_cast<std::size_t>(idx)]
                                   : st_history_[static_cast<std::size_t>(-idx - 1)];
      acc += lpc_q[static_cast<std::size_t>(i)] * past;
    }
    s[static_cast<std::size_t>(n)] = acc;
    // De-emphasis (inverse of the encoder's pre-emphasis).
    de_state_ = acc + kPreEmphasis * de_state_;
    pcm[static_cast<std::size_t>(n)] =
        common::clamp_s16(static_cast<int>(std::lround(de_state_)));
  }
  for (int i = 0; i < kLpcOrder; ++i) {
    st_history_[static_cast<std::size_t>(i)] =
        s[static_cast<std::size_t>(kGsmFrameSamples - 1 - i)];
  }
  return pcm;
}

}  // namespace mmsoc::audio
