#include "audio/allocation.h"

#include <algorithm>
#include <limits>

namespace mmsoc::audio {
namespace {

constexpr double kDbPerBit = 6.02;

// Quantization SNR provided by b bits (0 bits = no transmission: the
// "noise" is the signal itself, SNR 0 dB).
double snr_for_bits(int b) noexcept {
  return b > 0 ? kDbPerBit * b : 0.0;
}

}  // namespace

Allocation allocate_bits(const std::array<double, kSubbands>& smr_db,
                         int bit_pool, int samples_per_band,
                         std::span<const double> signal_db) noexcept {
  Allocation alloc{};
  if (samples_per_band < 1) samples_per_band = 1;
  int remaining = bit_pool;

  // Activating a band costs 2 bits/sample (a 1-bit two's-complement field
  // cannot represent +1, so the quantizer's minimum field is 2 bits);
  // deepening an active band costs 1.
  const auto grant_cost = [&](int k) {
    return alloc[static_cast<std::size_t>(k)] == 0 ? 2 * samples_per_band
                                                   : samples_per_band;
  };
  const auto grant = [&](int k) {
    alloc[static_cast<std::size_t>(k)] += alloc[static_cast<std::size_t>(k)] == 0 ? 2 : 1;
  };

  // Phase 1: satisfy masking — bits flow to the currently worst
  // mask-to-noise ratio among unmasked, affordable bands.
  for (;;) {
    int best = -1;
    double worst_mnr = std::numeric_limits<double>::infinity();
    for (int k = 0; k < kSubbands; ++k) {
      const auto b = alloc[static_cast<std::size_t>(k)];
      if (b >= kMaxBitsPerSample) continue;
      if (smr_db[static_cast<std::size_t>(k)] <= 0.0) continue;  // masked: skip entirely
      if (grant_cost(k) > remaining) continue;
      const double mnr = snr_for_bits(b) - smr_db[static_cast<std::size_t>(k)];
      if (mnr < worst_mnr) {
        worst_mnr = mnr;
        best = k;
      }
    }
    if (best < 0 || worst_mnr >= 0.0) break;  // unaffordable, masked, or satisfied
    remaining -= grant_cost(best);
    grant(best);
  }

  // Phase 2: spend leftovers by continuing to raise the worst noise
  // margin M = SNR(bits) - SMR, now *including* masked bands (whose M
  // starts at -SMR > 0). Masked bands therefore only receive bits once
  // every audible band holds at least that much margin — which is how
  // real encoders convert spare rate into robustness headroom. Bands
  // carrying no audible signal never get bits.
  if (signal_db.size() >= kSubbands) {
    constexpr double kAudibleFloorDb = -70.0;
    for (;;) {
      int best = -1;
      double worst_margin = std::numeric_limits<double>::infinity();
      for (int k = 0; k < kSubbands; ++k) {
        const auto b = alloc[static_cast<std::size_t>(k)];
        if (b >= kMaxBitsPerSample) continue;
        if (signal_db[static_cast<std::size_t>(k)] < kAudibleFloorDb) continue;
        if (grant_cost(k) > remaining) continue;
        const double margin = snr_for_bits(b) - smr_db[static_cast<std::size_t>(k)];
        if (margin < worst_margin) {
          worst_margin = margin;
          best = k;
        }
      }
      if (best < 0) break;
      remaining -= grant_cost(best);
      grant(best);
    }
  }
  return alloc;
}

double worst_mnr_db(const std::array<double, kSubbands>& smr_db,
                    const Allocation& alloc) noexcept {
  double worst = std::numeric_limits<double>::infinity();
  for (int k = 0; k < kSubbands; ++k) {
    if (smr_db[static_cast<std::size_t>(k)] <= 0.0) continue;  // masked bands don't count
    const double mnr =
        snr_for_bits(alloc[static_cast<std::size_t>(k)]) - smr_db[static_cast<std::size_t>(k)];
    worst = std::min(worst, mnr);
  }
  return worst == std::numeric_limits<double>::infinity() ? 0.0 : worst;
}

}  // namespace mmsoc::audio
