#include "audio/subband_codec.h"

#include <algorithm>
#include <cmath>

#include "common/bitstream.h"

namespace mmsoc::audio {
namespace {

using common::BitReader;
using common::BitWriter;
using common::Result;
using common::StatusCode;

constexpr std::uint16_t kSyncWord = 0xACD;  // 12-bit granule sync
constexpr int kScalefactors = 63;

// Quantize a normalized value in [-1, 1] to a signed `bits`-bit level.
std::int32_t quantize_sample(double v, int bits) noexcept {
  const std::int32_t maxlevel = (1 << (bits - 1)) - 1;
  const auto q = static_cast<std::int32_t>(std::lround(v * maxlevel));
  return std::clamp(q, -maxlevel, maxlevel);
}

double dequantize_sample(std::int32_t q, int bits) noexcept {
  const std::int32_t maxlevel = (1 << (bits - 1)) - 1;
  return maxlevel > 0 ? static_cast<double>(q) / maxlevel : 0.0;
}

}  // namespace

AudioStageOps& AudioStageOps::operator+=(const AudioStageOps& o) noexcept {
  mapper_macs += o.mapper_macs;
  psycho_ops += o.psycho_ops;
  quant_ops += o.quant_ops;
  packer_bits += o.packer_bits;
  return *this;
}

double scalefactor_value(int index) noexcept {
  // 32.0 * 2^(-index/3): ~2 dB steps downward, 63 entries. The 32.0
  // ceiling leaves headroom for filterbank gain: a full-scale input can
  // produce subband peaks of ~8 in a single band.
  index = std::clamp(index, 0, kScalefactors - 1);
  return 32.0 * std::pow(2.0, -static_cast<double>(index) / 3.0);
}

int scalefactor_index_for(double magnitude) noexcept {
  // Largest (smallest-value) index still covering the magnitude.
  for (int i = kScalefactors - 1; i >= 0; --i) {
    if (scalefactor_value(i) >= magnitude) return i;
  }
  return 0;
}

SubbandEncoder::SubbandEncoder(const AudioEncoderConfig& config)
    : config_(config), psycho_(config.sample_rate) {
  // Bits available per granule at the target rate, minus the fixed side
  // information (sync 12 + allocation 4*32 + ancillary length 16) and the
  // worst-case scalefactor cost (6 bits per band).
  const double granule_seconds =
      static_cast<double>(kGranuleSamples) / config_.sample_rate;
  const int total = static_cast<int>(config_.bitrate_bps * granule_seconds);
  bit_pool_ = std::max(0, total - (12 + 4 * kSubbands + 16 + 6 * kSubbands));
}

EncodedGranule SubbandEncoder::encode(
    std::span<const double, kGranuleSamples> samples,
    std::span<const std::uint8_t> ancillary) {
  EncodedGranule out;

  // MAPPER: 12 blocks of 32 subband samples.
  std::array<SubbandBlock, kBlocksPerGranule> sb;
  for (int t = 0; t < kBlocksPerGranule; ++t) {
    sb[static_cast<std::size_t>(t)] = analyzer_.analyze(
        std::span<const double, kSubbands>(samples.data() + t * kSubbands,
                                           kSubbands));
  }
  out.ops.mapper_macs = static_cast<std::uint64_t>(kBlocksPerGranule) *
                        kSubbands * (2 * kSubbands);

  // Scalefactor per band.
  std::array<int, kSubbands> sf_idx{};
  for (int k = 0; k < kSubbands; ++k) {
    double peak = 0.0;
    for (int t = 0; t < kBlocksPerGranule; ++t) {
      peak = std::max(peak, std::abs(sb[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)]));
    }
    sf_idx[static_cast<std::size_t>(k)] = scalefactor_index_for(peak);
  }

  // PSYCHOACOUSTIC MODEL -> SMR (or a power-only proxy when disabled).
  std::array<double, kSubbands> smr{};
  if (config_.use_psycho) {
    const auto psy = psycho_.analyze(samples);
    smr = psy.smr_db;
    out.ops.psycho_ops = 1024 * 10 + kSubbands * kSubbands;
  } else {
    // No masking knowledge: demand headroom proportional to signal level
    // above an arbitrary -90 dB floor, so allocation follows power alone.
    for (int k = 0; k < kSubbands; ++k) {
      double peak = 0.0;
      for (int t = 0; t < kBlocksPerGranule; ++t) {
        peak = std::max(peak, std::abs(sb[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)]));
      }
      smr[static_cast<std::size_t>(k)] =
          peak > 0 ? std::max(0.0, 20.0 * std::log10(peak) + 90.0) : 0.0;
    }
  }

  // QUANTIZER/CODER: greedy allocation against the SMRs, with leftover
  // bits spent on raw SNR (signal levels from the subband peaks).
  std::array<double, kSubbands> signal_db{};
  for (int k = 0; k < kSubbands; ++k) {
    double peak = 0.0;
    for (int t = 0; t < kBlocksPerGranule; ++t) {
      peak = std::max(peak, std::abs(sb[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)]));
    }
    signal_db[static_cast<std::size_t>(k)] =
        peak > 0 ? 20.0 * std::log10(peak) : -120.0;
  }
  out.allocation = allocate_bits(smr, bit_pool_, kBlocksPerGranule, signal_db);
  out.worst_mnr_db = worst_mnr_db(smr, out.allocation);

  // FRAME PACKER.
  BitWriter w;
  w.put_bits(kSyncWord, 12);
  for (int k = 0; k < kSubbands; ++k) {
    w.put_bits(out.allocation[static_cast<std::size_t>(k)], 4);
  }
  for (int k = 0; k < kSubbands; ++k) {
    if (out.allocation[static_cast<std::size_t>(k)] > 0) {
      w.put_bits(static_cast<std::uint64_t>(sf_idx[static_cast<std::size_t>(k)]), 6);
    }
  }
  for (int t = 0; t < kBlocksPerGranule; ++t) {
    for (int k = 0; k < kSubbands; ++k) {
      const int bits = out.allocation[static_cast<std::size_t>(k)];
      if (bits == 0) continue;
      const double scale = scalefactor_value(sf_idx[static_cast<std::size_t>(k)]);
      const double v = sb[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)] / scale;
      const std::int32_t q = quantize_sample(std::clamp(v, -1.0, 1.0), bits);
      w.put_bits(static_cast<std::uint64_t>(q) & ((1u << bits) - 1),
                 static_cast<unsigned>(bits));
      ++out.ops.quant_ops;
    }
  }
  // ANCILLARY DATA: 16-bit length + payload (Fig. 2's second input).
  w.put_bits(ancillary.size(), 16);
  for (const auto b : ancillary) w.put_bits(b, 8);

  out.bytes = w.take();
  out.ops.packer_bits = out.bytes.size() * 8;  // includes alignment padding
  return out;
}

Result<DecodedGranule> SubbandDecoder::decode(
    std::span<const std::uint8_t> bytes) {
  BitReader r(bytes);
  if (r.get_bits(12) != kSyncWord || !r.ok()) {
    return Result<DecodedGranule>(StatusCode::kCorruptData, "bad sync word");
  }
  Allocation alloc{};
  for (int k = 0; k < kSubbands; ++k) {
    alloc[static_cast<std::size_t>(k)] = static_cast<std::uint8_t>(r.get_bits(4));
  }
  std::array<int, kSubbands> sf_idx{};
  for (int k = 0; k < kSubbands; ++k) {
    if (alloc[static_cast<std::size_t>(k)] > 0) {
      sf_idx[static_cast<std::size_t>(k)] = static_cast<int>(r.get_bits(6));
    }
  }
  if (!r.ok()) {
    return Result<DecodedGranule>(StatusCode::kCorruptData,
                                  "truncated side info");
  }

  DecodedGranule out;
  for (int t = 0; t < kBlocksPerGranule; ++t) {
    SubbandBlock sb{};
    for (int k = 0; k < kSubbands; ++k) {
      const int bits = alloc[static_cast<std::size_t>(k)];
      if (bits == 0) {
        sb[static_cast<std::size_t>(k)] = 0.0;
        continue;
      }
      // Sign-extend the two's-complement field.
      auto raw = static_cast<std::uint32_t>(r.get_bits(static_cast<unsigned>(bits)));
      const std::uint32_t sign_bit = 1u << (bits - 1);
      std::int32_t q = static_cast<std::int32_t>(raw);
      if (raw & sign_bit) q -= (1 << bits);
      const double scale = scalefactor_value(sf_idx[static_cast<std::size_t>(k)]);
      sb[static_cast<std::size_t>(k)] = dequantize_sample(q, bits) * scale;
    }
    const auto pcm = synthesizer_.synthesize(sb);
    for (int i = 0; i < kSubbands; ++i) {
      out.samples[static_cast<std::size_t>(t * kSubbands + i)] = pcm[static_cast<std::size_t>(i)];
    }
  }

  const auto anc_len = r.get_bits(16);
  if (!r.ok()) {
    return Result<DecodedGranule>(StatusCode::kCorruptData,
                                  "truncated sample data");
  }
  for (std::uint64_t i = 0; i < anc_len; ++i) {
    out.ancillary.push_back(static_cast<std::uint8_t>(r.get_bits(8)));
  }
  if (!r.ok()) {
    return Result<DecodedGranule>(StatusCode::kCorruptData,
                                  "truncated ancillary data");
  }
  return out;
}

}  // namespace mmsoc::audio
