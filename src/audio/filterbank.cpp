#include "audio/filterbank.h"

#include "dsp/dispatch.h"

namespace mmsoc::audio {
namespace {

constexpr int kN = kSubbands;    // 32 bands
constexpr int kWindow = 2 * kN;  // 64-sample lapped window

// The sine window and modulation basis live in the dispatch layer
// (dsp::detail::fb_tables) so every SIMD variant of the MAC kernels
// multiplies by the same constants.

}  // namespace

SubbandAnalyzer::SubbandAnalyzer() { reset(); }

void SubbandAnalyzer::reset() noexcept { history_.fill(0.0); }

SubbandBlock SubbandAnalyzer::analyze(
    std::span<const double, kSubbands> samples) noexcept {
  // Assemble the 64-sample lapped window [history | current].
  alignas(32) double x[kWindow];
  for (int i = 0; i < kN; ++i) {
    x[i] = history_[static_cast<std::size_t>(i)];
    x[kN + i] = samples[static_cast<std::size_t>(i)];
  }
  SubbandBlock out;
  dsp::kernels().fb_analyze(x, out.data());
  for (int i = 0; i < kN; ++i)
    history_[static_cast<std::size_t>(i)] = samples[static_cast<std::size_t>(i)];
  return out;
}

SubbandSynthesizer::SubbandSynthesizer() { reset(); }

void SubbandSynthesizer::reset() noexcept { overlap_.fill(0.0); }

std::array<double, kSubbands> SubbandSynthesizer::synthesize(
    const SubbandBlock& bands) noexcept {
  // Windowed IMDCT of this block.
  alignas(32) double y[kWindow];
  dsp::kernels().fb_synth(bands.data(), y);
  // Overlap-add: output = previous tail + current head.
  std::array<double, kSubbands> out;
  for (int i = 0; i < kN; ++i) {
    out[static_cast<std::size_t>(i)] = overlap_[static_cast<std::size_t>(i)] + y[i];
    overlap_[static_cast<std::size_t>(i)] = y[kN + i];
  }
  return out;
}

}  // namespace mmsoc::audio
