#include "audio/filterbank.h"

#include <cmath>

#include "common/mathutil.h"

namespace mmsoc::audio {
namespace {

constexpr int kN = kSubbands;       // 32 bands
constexpr int kWindow = 2 * kN;     // 64-sample lapped window

// Precomputed sine window and modulation basis.
struct Tables {
  double window[kWindow];
  double basis[kN][kWindow];  // basis[k][n] = cos((pi/N)(n+0.5+N/2)(k+0.5))
  Tables() noexcept {
    for (int n = 0; n < kWindow; ++n) {
      window[n] = std::sin(common::kPi / kWindow * (n + 0.5));
    }
    for (int k = 0; k < kN; ++k) {
      for (int n = 0; n < kWindow; ++n) {
        basis[k][n] = std::cos(common::kPi / kN * (n + 0.5 + kN / 2.0) *
                               (k + 0.5));
      }
    }
  }
};
const Tables kTables;

}  // namespace

SubbandAnalyzer::SubbandAnalyzer() { reset(); }

void SubbandAnalyzer::reset() noexcept { history_.fill(0.0); }

SubbandBlock SubbandAnalyzer::analyze(
    std::span<const double, kSubbands> samples) noexcept {
  // Assemble the 64-sample lapped window [history | current].
  double x[kWindow];
  for (int i = 0; i < kN; ++i) {
    x[i] = history_[static_cast<std::size_t>(i)];
    x[kN + i] = samples[static_cast<std::size_t>(i)];
  }
  SubbandBlock out;
  for (int k = 0; k < kN; ++k) {
    double acc = 0.0;
    for (int n = 0; n < kWindow; ++n) {
      acc += kTables.window[n] * x[n] * kTables.basis[k][n];
    }
    out[static_cast<std::size_t>(k)] = acc;
  }
  for (int i = 0; i < kN; ++i) history_[static_cast<std::size_t>(i)] = samples[static_cast<std::size_t>(i)];
  return out;
}

SubbandSynthesizer::SubbandSynthesizer() { reset(); }

void SubbandSynthesizer::reset() noexcept { overlap_.fill(0.0); }

std::array<double, kSubbands> SubbandSynthesizer::synthesize(
    const SubbandBlock& bands) noexcept {
  // IMDCT of this block.
  double y[kWindow];
  for (int n = 0; n < kWindow; ++n) {
    double acc = 0.0;
    for (int k = 0; k < kN; ++k) {
      acc += bands[static_cast<std::size_t>(k)] * kTables.basis[k][n];
    }
    y[n] = (2.0 / kN) * kTables.window[n] * acc;
  }
  // Overlap-add: output = previous tail + current head.
  std::array<double, kSubbands> out;
  for (int i = 0; i < kN; ++i) {
    out[static_cast<std::size_t>(i)] = overlap_[static_cast<std::size_t>(i)] + y[i];
    overlap_[static_cast<std::size_t>(i)] = y[kN + i];
  }
  return out;
}

}  // namespace mmsoc::audio
