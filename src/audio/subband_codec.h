// The complete Fig. 2 audio encoder/decoder.
//
// Structure exactly as the paper's Figure 2: AUDIO SAMPLES -> MAPPER
// (32-band filterbank) -> QUANTIZER/CODER (scalefactors + bit-allocated
// uniform quantization) -> FRAME PACKER, with the PSYCHOACOUSTIC MODEL
// steering the quantizer and ANCILLARY DATA multiplexed into the frame.
// One frame codes a granule of 12 subband samples per band (384 PCM
// samples), in the style of MPEG-1 Layer I.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "audio/allocation.h"
#include "audio/filterbank.h"
#include "audio/psycho.h"
#include "common/status.h"

namespace mmsoc::audio {

inline constexpr int kBlocksPerGranule = 12;
inline constexpr int kGranuleSamples = kSubbands * kBlocksPerGranule;  // 384

/// Per-stage operation counts for one granule (Fig. 2 boxes).
struct AudioStageOps {
  std::uint64_t mapper_macs = 0;    ///< filterbank multiply-accumulates
  std::uint64_t psycho_ops = 0;     ///< FFT butterflies + spreading ops
  std::uint64_t quant_ops = 0;      ///< quantized subband samples
  std::uint64_t packer_bits = 0;    ///< bits written by the frame packer
  AudioStageOps& operator+=(const AudioStageOps& o) noexcept;
};

struct AudioEncoderConfig {
  double sample_rate = 44100.0;
  double bitrate_bps = 192000.0;
  /// Disable the psychoacoustic model (allocation by signal power only).
  /// The E-AUD experiment toggles this to quantify the masking gain.
  bool use_psycho = true;
};

struct EncodedGranule {
  std::vector<std::uint8_t> bytes;
  AudioStageOps ops;
  double worst_mnr_db = 0.0;  ///< min mask-to-noise ratio after allocation
  Allocation allocation{};
};

class SubbandEncoder {
 public:
  explicit SubbandEncoder(const AudioEncoderConfig& config);

  /// Encode one granule of PCM in [-1, 1]; `ancillary` rides along in the
  /// frame (Fig. 2's ancillary-data input), e.g. DRM rights markers.
  EncodedGranule encode(std::span<const double, kGranuleSamples> samples,
                        std::span<const std::uint8_t> ancillary = {});

  [[nodiscard]] const AudioEncoderConfig& config() const noexcept {
    return config_;
  }

 private:
  AudioEncoderConfig config_;
  SubbandAnalyzer analyzer_;
  PsychoModel psycho_;
  int bit_pool_;
};

struct DecodedGranule {
  std::array<double, kGranuleSamples> samples{};
  std::vector<std::uint8_t> ancillary;
};

class SubbandDecoder {
 public:
  SubbandDecoder() = default;

  common::Result<DecodedGranule> decode(std::span<const std::uint8_t> bytes);

 private:
  SubbandSynthesizer synthesizer_;
};

/// The shared scalefactor table (63 entries, ISO-style 2 dB ladder).
[[nodiscard]] double scalefactor_value(int index) noexcept;

/// Smallest scalefactor index whose value covers `magnitude`.
[[nodiscard]] int scalefactor_index_for(double magnitude) noexcept;

}  // namespace mmsoc::audio
