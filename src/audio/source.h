// Deterministic synthetic audio sources (DESIGN.md §3 substitution for
// real recordings).
//
// The speech generator implements exactly the production model the paper
// describes in §4: "voiced, which is periodic; and unvoiced, which has
// broader frequency content. These two types of sound can be generated
// [by] filtering a combination of glottal resonance and noise."
#pragma once

#include <cstdint>
#include <vector>

namespace mmsoc::audio {

/// Speech-like signal: alternating voiced segments (glottal pulse train
/// through two formant resonators) and unvoiced segments (noise through a
/// highpass), with pitch vibrato. Amplitude roughly [-0.5, 0.5].
[[nodiscard]] std::vector<double> make_speech(std::size_t samples,
                                              double sample_rate,
                                              std::uint64_t seed);

/// Music-like signal: slowly-changing harmonic chords plus percussive
/// transients and low-level noise. Broader spectrum than speech.
[[nodiscard]] std::vector<double> make_music(std::size_t samples,
                                             double sample_rate,
                                             std::uint64_t seed);

/// Pure sine at `hz` with the given amplitude.
[[nodiscard]] std::vector<double> make_tone(std::size_t samples,
                                            double sample_rate, double hz,
                                            double amplitude = 0.5);

/// White noise with the given amplitude.
[[nodiscard]] std::vector<double> make_noise(std::size_t samples,
                                             double amplitude,
                                             std::uint64_t seed);

/// The classic masking demonstration (§4): a strong masker tone plus a
/// weak probe at a nearby frequency.
[[nodiscard]] std::vector<double> make_masking_pair(std::size_t samples,
                                                    double sample_rate,
                                                    double masker_hz,
                                                    double probe_hz,
                                                    double probe_amplitude);

/// Convert [-1, 1] doubles to 16-bit PCM with clamping.
[[nodiscard]] std::vector<std::int16_t> to_pcm16(
    const std::vector<double>& samples);

/// Convert 16-bit PCM back to [-1, 1] doubles.
[[nodiscard]] std::vector<double> from_pcm16(
    const std::vector<std::int16_t>& pcm);

}  // namespace mmsoc::audio
