// Objective audio quality metrics.
#pragma once

#include <span>

namespace mmsoc::audio {

/// Signal-to-noise ratio in dB of `test` against `ref` (time-aligned).
/// Identical signals are capped at 99 dB.
[[nodiscard]] double snr_db(std::span<const double> ref,
                            std::span<const double> test) noexcept;

/// Mean of per-segment SNRs (segments of `segment` samples, default 256),
/// which better reflects perceived quality of nonstationary signals.
[[nodiscard]] double segmental_snr_db(std::span<const double> ref,
                                      std::span<const double> test,
                                      std::size_t segment = 256) noexcept;

/// Best alignment offset (0..max_shift) of `test` against `ref` by
/// cross-correlation — codecs in this library introduce block delays.
[[nodiscard]] std::size_t best_alignment(std::span<const double> ref,
                                         std::span<const double> test,
                                         std::size_t max_shift) noexcept;

}  // namespace mmsoc::audio
