// RPE-LTP speech codec (GSM 06.10 style).
//
// §4: "The GSM cellular telephony standard uses an audio compression
// method called Regular Pulse Excitation-Long Term Predictor (RPE-LTP).
// This method uses a fairly simple model of the voice ... voiced, which
// is periodic; and unvoiced, which has broader frequency content. These
// two types of sound can be generated filtering a combination of glottal
// resonance and noise. The RPE-LTP encoder generates filter coefficients
// that can be used at the receiver to generate the required sound."
//
// Structure per 160-sample (20 ms @ 8 kHz) frame:
//   * pre-emphasis, order-8 LPC analysis, LAR quantization (the "filter
//     coefficients" of the source-filter model)
//   * short-term analysis filter -> residual
//   * per 40-sample subframe: long-term predictor (pitch lag 40..120 +
//     2-bit gain) capturing the *voiced* periodicity, then regular-pulse
//     excitation (13 pulses on a 1-of-3 grid, 3-bit amplitudes + 6-bit
//     block maximum) capturing the remaining *unvoiced* noise-like part.
// Rate: 268 bits / 20 ms = 13.4 kbit/s (GSM full-rate is 13.0).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"

namespace mmsoc::audio {

inline constexpr int kGsmFrameSamples = 160;  // 20 ms at 8 kHz
inline constexpr int kGsmSubframe = 40;
inline constexpr int kLpcOrder = 8;
inline constexpr int kRpePulses = 13;
inline constexpr int kMinLag = 40;
inline constexpr int kMaxLag = 120;
inline constexpr std::size_t kGsmFrameBytes = 34;  // 268 bits padded

class RpeLtpEncoder {
 public:
  RpeLtpEncoder() = default;

  /// Encode one frame of 16-bit PCM. Always returns kGsmFrameBytes bytes.
  std::vector<std::uint8_t> encode(
      std::span<const std::int16_t, kGsmFrameSamples> pcm);

  void reset();

 private:
  // Persistent analysis state.
  double pre_state_ = 0.0;                         // pre-emphasis memory
  std::array<double, kLpcOrder> st_history_{};     // short-term filter taps
  std::vector<double> residual_history_ =
      std::vector<double>(kMaxLag, 0.0);           // reconstructed residual
};

class RpeLtpDecoder {
 public:
  RpeLtpDecoder() = default;

  common::Result<std::array<std::int16_t, kGsmFrameSamples>> decode(
      std::span<const std::uint8_t> bytes);

  void reset();

 private:
  double de_state_ = 0.0;                          // de-emphasis memory
  std::array<double, kLpcOrder> st_history_{};     // synthesis filter taps
  std::vector<double> residual_history_ =
      std::vector<double>(kMaxLag, 0.0);
};

/// Levinson-Durbin: autocorrelation -> LPC + reflection coefficients.
/// Returns false if the signal is degenerate (zero energy).
bool levinson_durbin(std::span<const double> autocorr,
                     std::span<double> lpc_out,
                     std::span<double> reflection_out) noexcept;

/// Log-area-ratio transform pair used for coefficient quantization.
[[nodiscard]] double lar_from_reflection(double r) noexcept;
[[nodiscard]] double reflection_from_lar(double lar) noexcept;

}  // namespace mmsoc::audio
