// 32-band subband mapper — Fig. 2 "MAPPER".
//
// MPEG-1 audio splits the signal into 32 critically-sampled subbands
// before quantization (paper, §4: "MP3 uses a combination of subband
// coding and a psychoacoustic model"). We implement the mapper as a
// 32-band cosine-modulated lapped transform (MDCT with sine window,
// Princen-Bradley TDAC) — the same filter family as the Layer III hybrid
// bank — which gives mathematically perfect reconstruction with one
// 32-sample block of delay. DESIGN.md §3 records this substitution for
// the standard's tabulated 512-tap polyphase prototype.
#pragma once

#include <array>
#include <span>
#include <vector>

namespace mmsoc::audio {

inline constexpr int kSubbands = 32;
/// One block of subband samples (one output per band per 32 input samples).
using SubbandBlock = std::array<double, kSubbands>;

/// Streaming 32-band analysis: push 32 PCM samples, get 32 subband values.
class SubbandAnalyzer {
 public:
  SubbandAnalyzer();

  /// Analyze one block of exactly kSubbands input samples.
  SubbandBlock analyze(std::span<const double, kSubbands> samples) noexcept;

  void reset() noexcept;

 private:
  std::array<double, kSubbands> history_{};  // previous input block
};

/// Streaming 32-band synthesis: inverse of SubbandAnalyzer with
/// overlap-add; total analysis+synthesis delay is kSubbands samples.
class SubbandSynthesizer {
 public:
  SubbandSynthesizer();

  /// Synthesize one block of kSubbands output samples.
  std::array<double, kSubbands> synthesize(const SubbandBlock& bands) noexcept;

  void reset() noexcept;

 private:
  std::array<double, kSubbands> overlap_{};  // tail of the previous IMDCT
};

}  // namespace mmsoc::audio
