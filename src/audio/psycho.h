// Psychoacoustic model — Fig. 2 "PSYCHOACOUSTIC MODEL".
//
// §4: "A key psychoacoustic mechanism exploited by compression is
// masking — when one tone is heard, followed by another tone at a nearby
// frequency, the second tone cannot be heard for some interval. ... The
// encoder can eliminate masked tones to reduce the amount of information
// that is sent to the decoder."
//
// The model follows the structure of ISO 11172-3 psychoacoustic model 1,
// simplified to subband granularity: an FFT power spectrum is folded into
// the 32 subbands, a frequency-spreading function propagates masking from
// strong (tonality-weighted) maskers to their neighbours, the absolute
// threshold of hearing floors the result, and the output is a
// signal-to-mask ratio (SMR) per subband that drives bit allocation.
#pragma once

#include <array>
#include <span>

#include "audio/filterbank.h"

namespace mmsoc::audio {

/// Per-subband analysis result, all in dB.
struct PsychoResult {
  std::array<double, kSubbands> signal_db;     ///< subband signal level
  std::array<double, kSubbands> threshold_db;  ///< masking threshold
  std::array<double, kSubbands> smr_db;        ///< signal-to-mask ratio
  double spectral_flatness = 0.0;              ///< 0 = tonal, 1 = noisy
};

class PsychoModel {
 public:
  /// `sample_rate` shapes the absolute-threshold curve.
  explicit PsychoModel(double sample_rate = 44100.0) noexcept;

  /// Analyze one granule of PCM (any length >= 64; an FFT of up to 1024
  /// points is taken from the start). Returns per-subband SMR.
  [[nodiscard]] PsychoResult analyze(std::span<const double> samples) const;

  /// Absolute threshold of hearing (approximation) at frequency hz,
  /// in dB relative to full-scale sine.
  [[nodiscard]] static double absolute_threshold_db(double hz) noexcept;

 private:
  double sample_rate_;
};

}  // namespace mmsoc::audio
