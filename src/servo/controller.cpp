#include "servo/controller.h"

#include <algorithm>
#include <cmath>

#include "common/mathutil.h"

namespace mmsoc::servo {

PidController::PidController(const PidGains& gains, double sample_rate_hz)
    : gains_(gains), dt_(1.0 / sample_rate_hz) {
  // One-pole lowpass on the derivative term.
  const double rc = 1.0 / (2.0 * common::kPi * gains_.derivative_cutoff_hz);
  alpha_ = dt_ / (rc + dt_);
}

double PidController::update(double error) noexcept {
  integral_ += error * dt_;
  // Anti-windup clamp keeps the integral from dominating after saturation.
  integral_ = std::clamp(integral_, -10.0, 10.0);
  const double raw_deriv = (error - prev_error_) / dt_;
  deriv_state_ += alpha_ * (raw_deriv - deriv_state_);
  prev_error_ = error;
  return gains_.kp * error + gains_.ki * integral_ + gains_.kd * deriv_state_;
}

void PidController::reset() noexcept {
  integral_ = prev_error_ = deriv_state_ = 0.0;
}

LoopMetrics run_step_response(Plant& plant, PidController& controller,
                              double step_size, double seconds) {
  LoopMetrics m;
  const double fs = plant.params().sample_rate_hz;
  const auto steps = static_cast<std::size_t>(seconds * fs);
  double peak = 0.0;
  std::size_t last_outside = 0;
  for (std::size_t n = 0; n < steps; ++n) {
    const double error = step_size - plant.position();
    const double u = controller.update(error);
    plant.step(u);
    peak = std::max(peak, plant.position());
    if (std::abs(plant.position() - step_size) > 0.02 * std::abs(step_size)) {
      last_outside = n;
    }
    if (!std::isfinite(plant.position()) ||
        std::abs(plant.position()) > 100.0 * std::abs(step_size)) {
      m.stable = false;
      return m;
    }
  }
  m.overshoot_fraction = std::max(0.0, (peak - step_size) / step_size);
  m.settling_time_s = static_cast<double>(last_outside + 1) / fs;
  return m;
}

LoopMetrics run_tracking(Plant& plant, PidController& controller,
                         EccentricityDisturbance& disturbance,
                         double seconds) {
  LoopMetrics m;
  const double fs = plant.params().sample_rate_hz;
  const auto steps = static_cast<std::size_t>(seconds * fs);
  double sum_sq = 0.0;
  std::size_t counted = 0;
  for (std::size_t n = 0; n < steps; ++n) {
    const double error = 0.0 - plant.position();
    const double u = controller.update(error);
    plant.step(u, disturbance.next());
    if (!std::isfinite(plant.position()) || std::abs(plant.position()) > 1e6) {
      m.stable = false;
      return m;
    }
    // Skip the first 20% as transient.
    if (n > steps / 5) {
      sum_sq += plant.position() * plant.position();
      m.max_tracking_error = std::max(m.max_tracking_error,
                                      std::abs(plant.position()));
      ++counted;
    }
  }
  m.rms_tracking_error = counted > 0 ? std::sqrt(sum_sq / static_cast<double>(counted)) : 0.0;
  return m;
}

}  // namespace mmsoc::servo
