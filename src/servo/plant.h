// DVD drive mechanism model (§7): "DVD recorders and players must control
// their drives using complex digital filters. The control requires
// real-time processing at high rates and the control laws are generally
// adapted to the particular mechanism being used."
//
// The focus/tracking actuator is modeled as the standard second-order
// mass-spring-damper (voice-coil suspension):
//   m x'' + c x' + k x = gain * u + disturbance
// discretized by semi-implicit Euler at the servo rate. Per-unit
// manufacturing scatter (seeded) makes every "mechanism" slightly
// different — which is what the autotuner must adapt to.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace mmsoc::servo {

struct PlantParams {
  double mass = 1.0;            ///< normalized moving mass
  double damping = 12.0;        ///< c
  double stiffness = 2500.0;    ///< k (resonance ~8 Hz normalized)
  double actuator_gain = 2000.0;
  double sample_rate_hz = 44100.0;  ///< servo update rate
};

/// Draw a unit-specific parameter set: nominal +/- scatter.
[[nodiscard]] PlantParams scattered_params(const PlantParams& nominal,
                                           double scatter_fraction,
                                           std::uint64_t unit_seed);

class Plant {
 public:
  explicit Plant(const PlantParams& params) : p_(params) {}

  /// Advance one servo period with control effort `u` and external
  /// disturbance force `d`; returns the new position.
  double step(double u, double d = 0.0) noexcept;

  [[nodiscard]] double position() const noexcept { return x_; }
  [[nodiscard]] double velocity() const noexcept { return v_; }
  void reset() noexcept { x_ = v_ = 0.0; }

  [[nodiscard]] const PlantParams& params() const noexcept { return p_; }

 private:
  PlantParams p_;
  double x_ = 0.0;
  double v_ = 0.0;
};

/// Disc eccentricity disturbance: a sinusoid at the spindle rate plus
/// surface-noise — the dominant tracking disturbance in optical drives.
class EccentricityDisturbance {
 public:
  EccentricityDisturbance(double amplitude, double spindle_hz,
                          double noise_sigma, double sample_rate_hz,
                          std::uint64_t seed)
      : amplitude_(amplitude), spindle_hz_(spindle_hz),
        noise_sigma_(noise_sigma), sample_rate_(sample_rate_hz), rng_(seed) {}

  double next() noexcept;

 private:
  double amplitude_;
  double spindle_hz_;
  double noise_sigma_;
  double sample_rate_;
  common::Rng rng_;
  std::uint64_t n_ = 0;
};

}  // namespace mmsoc::servo
