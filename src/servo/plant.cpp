#include "servo/plant.h"

#include <cmath>

#include "common/mathutil.h"

namespace mmsoc::servo {

PlantParams scattered_params(const PlantParams& nominal,
                             double scatter_fraction, std::uint64_t unit_seed) {
  common::Rng rng(unit_seed);
  const auto jitter = [&](double v) {
    return v * (1.0 + scatter_fraction * rng.next_double_in(-1.0, 1.0));
  };
  PlantParams p = nominal;
  p.mass = jitter(nominal.mass);
  p.damping = jitter(nominal.damping);
  p.stiffness = jitter(nominal.stiffness);
  p.actuator_gain = jitter(nominal.actuator_gain);
  return p;
}

double Plant::step(double u, double d) noexcept {
  const double dt = 1.0 / p_.sample_rate_hz;
  const double force = p_.actuator_gain * u + d - p_.damping * v_ -
                       p_.stiffness * x_;
  // Semi-implicit Euler: stable for stiff spring at servo rates.
  v_ += dt * force / p_.mass;
  x_ += dt * v_;
  return x_;
}

double EccentricityDisturbance::next() noexcept {
  const double t = static_cast<double>(n_++) / sample_rate_;
  return amplitude_ * std::sin(2.0 * common::kPi * spindle_hz_ * t) +
         noise_sigma_ * rng_.next_gaussian();
}

}  // namespace mmsoc::servo
