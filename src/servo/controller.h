// Servo controller and closed-loop harness.
//
// PID with derivative filtering, implemented both in floating point and
// with the Q15 fixed-point biquads a real drive DSP would use, plus the
// metrics the E-SERVO experiment reports (step response, RMS tracking
// error under eccentricity).
#pragma once

#include <cstdint>

#include "dsp/filter.h"
#include "servo/plant.h"

namespace mmsoc::servo {

// Defaults designed for the nominal plant (m=1, c=12, k=2500, gain=2000):
// ~60 Hz crossover with ~50 degrees of phase margin from the derivative
// lead, integral corner a decade below crossover.
struct PidGains {
  double kp = 40.0;
  double ki = 1500.0;
  double kd = 0.15;
  double derivative_cutoff_hz = 2000.0;  ///< derivative lowpass
};

class PidController {
 public:
  PidController(const PidGains& gains, double sample_rate_hz);

  /// One servo update: returns actuator command for the given error.
  double update(double error) noexcept;

  void reset() noexcept;
  [[nodiscard]] const PidGains& gains() const noexcept { return gains_; }

 private:
  PidGains gains_;
  double dt_;
  double integral_ = 0.0;
  double prev_error_ = 0.0;
  double deriv_state_ = 0.0;  // filtered derivative
  double alpha_ = 0.0;        // derivative filter coefficient
};

/// Closed-loop quality metrics.
struct LoopMetrics {
  double overshoot_fraction = 0.0;   ///< peak overshoot / step size
  double settling_time_s = 0.0;      ///< to within 2% of target
  double rms_tracking_error = 0.0;   ///< under disturbance
  double max_tracking_error = 0.0;
  bool stable = true;
};

/// Run a step response of `seconds` and report overshoot/settling.
LoopMetrics run_step_response(Plant& plant, PidController& controller,
                              double step_size, double seconds);

/// Run tracking under eccentricity disturbance; reference is 0.
LoopMetrics run_tracking(Plant& plant, PidController& controller,
                         EccentricityDisturbance& disturbance, double seconds);

}  // namespace mmsoc::servo
