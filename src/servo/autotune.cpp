#include "servo/autotune.h"

#include <cmath>

#include "common/mathutil.h"

namespace mmsoc::servo {

Identification identify_plant(Plant& plant, double probe_amplitude) {
  Identification id;
  const double fs = plant.params().sample_rate_hz;

  // --- DC gain: hold a constant command until the position settles.
  plant.reset();
  const auto settle_steps = static_cast<std::size_t>(fs * 0.5);
  for (std::size_t n = 0; n < settle_steps; ++n) {
    plant.step(probe_amplitude);
  }
  id.dc_gain = plant.position() / probe_amplitude;

  // --- Resonance: swept sine, find the frequency of maximum response.
  double best_amp = 0.0;
  for (double hz = 2.0; hz <= 40.0; hz += 1.0) {
    plant.reset();
    double peak = 0.0;
    const auto steps = static_cast<std::size_t>(fs * 0.4);
    for (std::size_t n = 0; n < steps; ++n) {
      const double t = static_cast<double>(n) / fs;
      plant.step(probe_amplitude * std::sin(2.0 * common::kPi * hz * t));
      if (n > steps / 2) {
        peak = std::max(peak, std::abs(plant.position()));
      }
    }
    if (peak > best_amp) {
      best_amp = peak;
      id.resonance_hz = hz;
    }
  }
  plant.reset();
  return id;
}

PidGains adapt_gains(const PidGains& nominal, const Identification& measured,
                     const Identification& reference) {
  PidGains adapted = nominal;
  if (measured.dc_gain <= 0.0 || reference.dc_gain <= 0.0) return adapted;
  // Loop gain correction: if this unit's plant gain is higher than the
  // design target, back the controller off proportionally (and vice
  // versa). Frequency terms scale with the resonance shift.
  const double gain_ratio = reference.dc_gain / measured.dc_gain;
  adapted.kp *= gain_ratio;
  adapted.ki *= gain_ratio;
  adapted.kd *= gain_ratio;
  if (measured.resonance_hz > 0.0 && reference.resonance_hz > 0.0) {
    const double freq_ratio = measured.resonance_hz / reference.resonance_hz;
    adapted.ki *= freq_ratio;         // integral tracks stiffness shift
    adapted.kd /= freq_ratio;         // derivative backs off for higher resonance
  }
  return adapted;
}

Identification nominal_identification(const PlantParams& nominal) {
  Plant plant(nominal);
  return identify_plant(plant);
}

}  // namespace mmsoc::servo
