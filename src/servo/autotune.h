// Per-mechanism adaptation (§7: "the control laws are generally adapted
// to the particular mechanism being used").
//
// At power-up the drive identifies its actual actuator: it injects a
// probe, measures the DC gain and resonance of *this* unit, and rescales
// the nominal PID gains accordingly. The E-SERVO experiment compares
// tracking error with nominal vs adapted gains across a production run of
// scattered mechanisms.
#pragma once

#include "servo/controller.h"
#include "servo/plant.h"

namespace mmsoc::servo {

struct Identification {
  double dc_gain = 0.0;        ///< measured position per unit command
  double resonance_hz = 0.0;   ///< estimated resonance frequency
};

/// Identify the mechanism by applying a constant command and a frequency
/// probe (open loop, as done in drive start-up calibration).
Identification identify_plant(Plant& plant, double probe_amplitude = 0.001);

/// Scale nominal gains so the loop gain matches the nominal design on
/// this particular unit.
[[nodiscard]] PidGains adapt_gains(const PidGains& nominal,
                                   const Identification& measured,
                                   const Identification& reference);

/// Identification of the nominal (design-target) plant.
[[nodiscard]] Identification nominal_identification(const PlantParams& nominal);

}  // namespace mmsoc::servo
