#include "analysis/audio_features.h"

#include <algorithm>
#include <cmath>

#include "dsp/fft.h"

namespace mmsoc::analysis {

AudioFeatureExtractor::AudioFeatureExtractor(double sample_rate,
                                             std::size_t frame_size)
    : sample_rate_(sample_rate), frame_size_(frame_size) {}

void AudioFeatureExtractor::reset() { prev_spectrum_.clear(); }

AudioFrameFeatures AudioFeatureExtractor::analyze(
    std::span<const double> frame) {
  AudioFrameFeatures f;
  if (frame.empty()) return f;

  // Time-domain features.
  double energy = 0.0;
  int crossings = 0;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    energy += frame[i] * frame[i];
    if (i > 0 && (frame[i] >= 0) != (frame[i - 1] >= 0)) ++crossings;
  }
  f.energy = energy / static_cast<double>(frame.size());
  f.zero_crossing_rate =
      static_cast<double>(crossings) / static_cast<double>(frame.size());

  // Spectral features.
  const auto power = dsp::power_spectrum(frame, frame_size_);
  double total = 0.0, weighted = 0.0;
  for (std::size_t k = 1; k < power.size(); ++k) {
    total += power[k];
    const double hz = static_cast<double>(k) * sample_rate_ /
                      static_cast<double>(frame_size_);
    weighted += hz * power[k];
  }
  f.spectral_centroid = total > 0 ? weighted / total : 0.0;

  double cum = 0.0;
  f.spectral_rolloff = 0.0;
  for (std::size_t k = 1; k < power.size(); ++k) {
    cum += power[k];
    if (cum >= 0.85 * total) {
      f.spectral_rolloff = static_cast<double>(k) * sample_rate_ /
                           static_cast<double>(frame_size_);
      break;
    }
  }

  // Flux against the previous frame's normalized spectrum.
  std::vector<double> norm(power.size());
  const double denom = total > 0 ? total : 1.0;
  for (std::size_t k = 0; k < power.size(); ++k) norm[k] = power[k] / denom;
  if (prev_spectrum_.size() == norm.size()) {
    double flux = 0.0;
    for (std::size_t k = 0; k < norm.size(); ++k) {
      const double d = norm[k] - prev_spectrum_[k];
      flux += d * d;
    }
    f.spectral_flux = std::sqrt(flux);
  }
  prev_spectrum_ = std::move(norm);
  return f;
}

std::vector<AudioFrameFeatures> AudioFeatureExtractor::analyze_all(
    std::span<const double> samples) {
  std::vector<AudioFrameFeatures> out;
  for (std::size_t start = 0; start + frame_size_ <= samples.size();
       start += frame_size_) {
    out.push_back(analyze(samples.subspan(start, frame_size_)));
  }
  return out;
}

AudioStats summarize(std::span<const AudioFrameFeatures> frames) {
  AudioStats s;
  if (frames.empty()) return s;
  const double n = static_cast<double>(frames.size());
  for (const auto& f : frames) {
    s.mean_energy += f.energy;
    s.zcr_mean += f.zero_crossing_rate;
    s.centroid_mean += f.spectral_centroid;
    s.flux_mean += f.spectral_flux;
  }
  s.mean_energy /= n;
  s.zcr_mean /= n;
  s.centroid_mean /= n;
  s.flux_mean /= n;
  for (const auto& f : frames) {
    const double d = f.zero_crossing_rate - s.zcr_mean;
    s.zcr_variance += d * d;
    if (f.energy < 0.5 * s.mean_energy) s.low_energy_ratio += 1.0;
  }
  s.zcr_variance /= n;
  s.low_energy_ratio /= n;
  return s;
}

AudioClass classify(const AudioStats& stats) noexcept {
  if (stats.mean_energy < 1e-6) return AudioClass::kSilence;
  // Speech: strong voiced/unvoiced alternation -> high ZCR variance and
  // mean (unvoiced fricatives are noise-like), high spectral flux, and an
  // elevated centroid. Music holds a stabler, lower-band spectrum.
  int speech_votes = 0;
  if (stats.zcr_variance > 5e-3) ++speech_votes;
  if (stats.zcr_mean > 0.15) ++speech_votes;
  if (stats.flux_mean > 0.12) ++speech_votes;
  if (stats.centroid_mean > 1500.0) ++speech_votes;
  return speech_votes >= 2 ? AudioClass::kSpeech : AudioClass::kMusic;
}

}  // namespace mmsoc::analysis
