// Audio content analysis (§5): "Audio content analysis has been used to
// categorize and search for music. Algorithms have had some success in
// categorizing music into categories and identifying salient features."
//
// Frame-level features (zero-crossing rate, energy, spectral centroid /
// rolloff / flux) plus a transparent rule-based music/speech classifier
// built on their long-term statistics.
#pragma once

#include <span>
#include <vector>

namespace mmsoc::analysis {

/// Features of one analysis frame (e.g. 1024 samples).
struct AudioFrameFeatures {
  double energy = 0.0;             ///< mean squared amplitude
  double zero_crossing_rate = 0.0; ///< crossings per sample
  double spectral_centroid = 0.0;  ///< Hz
  double spectral_rolloff = 0.0;   ///< Hz below which 85% of energy lies
  double spectral_flux = 0.0;      ///< L2 change of normalized spectrum
};

/// Extract features for consecutive frames of `frame_size` samples.
/// `prev_spectrum` state for flux is kept internally per call sequence.
class AudioFeatureExtractor {
 public:
  explicit AudioFeatureExtractor(double sample_rate, std::size_t frame_size = 1024);

  /// Analyze the next frame (must be exactly frame_size samples).
  AudioFrameFeatures analyze(std::span<const double> frame);

  /// Convenience: analyze a whole signal, returning per-frame features.
  std::vector<AudioFrameFeatures> analyze_all(std::span<const double> samples);

  void reset();

 private:
  double sample_rate_;
  std::size_t frame_size_;
  std::vector<double> prev_spectrum_;
};

enum class AudioClass { kSpeech, kMusic, kSilence };

/// Long-term statistics over a feature sequence.
struct AudioStats {
  double mean_energy = 0.0;
  double zcr_mean = 0.0;
  double zcr_variance = 0.0;
  double centroid_mean = 0.0;
  double flux_mean = 0.0;
  double low_energy_ratio = 0.0;  ///< fraction of frames below 0.5x mean energy
};

[[nodiscard]] AudioStats summarize(std::span<const AudioFrameFeatures> frames);

/// Rule-based classifier: speech shows high ZCR variance (voiced/unvoiced
/// alternation, exactly the structure §4 describes) and a high
/// low-energy-frame ratio (pauses); music is spectrally stabler.
[[nodiscard]] AudioClass classify(const AudioStats& stats) noexcept;

}  // namespace mmsoc::analysis
