#include "analysis/adaptive_gop.h"

namespace mmsoc::analysis {

bool AdaptiveGopController::observe(const video::Frame& frame) {
  auto features = extract_features(frame);
  bool intra = false;
  if (!prev_.has_value()) {
    intra = true;  // first frame has no reference
  } else if (histogram_distance(*prev_, features) > params_.cut.threshold) {
    intra = true;
    ++cuts_;
  } else if (since_intra_ + 1 >= params_.max_interval) {
    intra = true;  // periodic refresh
  }
  prev_ = std::move(features);
  since_intra_ = intra ? 0 : since_intra_ + 1;
  return intra;
}

}  // namespace mmsoc::analysis
