// Video content detectors (§5).
//
// "The Replay (TM) digital video recorder ... automatically identifies
// commercials and skips them. Replay uses black frames between programs
// and commercials to identify television. Early VCR add-ons identified
// commercials using the color burst, under the assumption that many
// movies on broadcast TV were black-and-white while the commercials were
// in color." Both detectors are implemented here, plus histogram-based
// scene-cut detection for the "parse television content into segments"
// research the section describes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/frame_features.h"

namespace mmsoc::analysis {

/// Label assigned to a frame or segment.
enum class ContentLabel : std::uint8_t { kProgram, kCommercial, kBlack };

/// A labeled half-open frame range [begin, end).
struct Segment {
  int begin = 0;
  int end = 0;
  ContentLabel label = ContentLabel::kProgram;
  bool operator==(const Segment&) const = default;
};

struct BlackFrameParams {
  double max_mean_luma = 24.0;   ///< studio black is 16
  double max_variance = 16.0;    ///< uniform frame
};

/// True if the features describe a black separator frame.
[[nodiscard]] bool is_black_frame(const FrameFeatures& f,
                                  const BlackFrameParams& p = {}) noexcept;

/// Replay-style detector: black-frame runs separate blocks; blocks
/// shorter than `max_commercial_frames` between separators are
/// commercials, longer blocks are program.
class BlackFrameCommercialDetector {
 public:
  struct Params {
    BlackFrameParams black;
    int min_separator_frames = 2;     ///< run length that counts as a separator
    int max_commercial_frames = 120;  ///< blocks at most this long = commercial
  };

  BlackFrameCommercialDetector() = default;
  explicit BlackFrameCommercialDetector(const Params& params)
      : params_(params) {}

  /// Segment a whole recording from per-frame features.
  [[nodiscard]] std::vector<Segment> segment(
      std::span<const FrameFeatures> frames) const;

 private:
  Params params_;
};

/// VCR-style color-burst detector: classifies segments by saturation.
/// Assumes the *program* is black-and-white and commercials are in color
/// (the historical heuristic the paper cites).
class ColorBurstCommercialDetector {
 public:
  struct Params {
    double bw_saturation_max = 4.0;  ///< below: black-and-white (program)
    int min_segment_frames = 5;      ///< smooth spurious flips
  };

  ColorBurstCommercialDetector() = default;
  explicit ColorBurstCommercialDetector(const Params& params)
      : params_(params) {}

  [[nodiscard]] std::vector<Segment> segment(
      std::span<const FrameFeatures> frames) const;

 private:
  Params params_;
};

/// Histogram-difference scene-cut detector.
class SceneCutDetector {
 public:
  struct Params {
    double threshold = 0.5;  ///< histogram L1 distance triggering a cut
  };

  SceneCutDetector() = default;
  explicit SceneCutDetector(const Params& params) : params_(params) {}

  /// Frame indices at which a new scene starts (always includes 0 for a
  /// non-empty input).
  [[nodiscard]] std::vector<int> detect(
      std::span<const FrameFeatures> frames) const;

 private:
  Params params_;
};

/// Accuracy of a detector against ground truth: per-frame precision and
/// recall of the kCommercial label.
struct DetectionScore {
  double precision = 0.0;
  double recall = 0.0;
  [[nodiscard]] double f1() const noexcept {
    const double d = precision + recall;
    return d > 0 ? 2.0 * precision * recall / d : 0.0;
  }
};

[[nodiscard]] DetectionScore score_segments(std::span<const Segment> predicted,
                                            std::span<const Segment> truth,
                                            int total_frames);

/// The DVR "skip commercials" output: frame ranges to play (§5).
[[nodiscard]] std::vector<Segment> playback_ranges(
    std::span<const Segment> segments);

}  // namespace mmsoc::analysis
