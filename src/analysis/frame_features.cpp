#include "analysis/frame_features.h"

#include <cmath>

namespace mmsoc::analysis {

FrameFeatures extract_features(const video::Frame& frame) {
  FrameFeatures f;
  f.mean_luma = frame.y().mean();
  f.luma_variance = frame.y().variance();
  f.saturation = frame.mean_saturation();
  for (int y = 0; y < frame.y().height(); ++y) {
    for (const auto p : frame.y().row_span(y)) {
      ++f.luma_histogram[static_cast<std::size_t>(p >> 4)];
    }
  }
  return f;
}

double histogram_distance(const FrameFeatures& a,
                          const FrameFeatures& b) noexcept {
  double total_a = 0.0, total_b = 0.0;
  for (std::size_t i = 0; i < a.luma_histogram.size(); ++i) {
    total_a += a.luma_histogram[i];
    total_b += b.luma_histogram[i];
  }
  if (total_a <= 0.0 || total_b <= 0.0) return 0.0;
  double dist = 0.0;
  for (std::size_t i = 0; i < a.luma_histogram.size(); ++i) {
    dist += std::abs(a.luma_histogram[i] / total_a - b.luma_histogram[i] / total_b);
  }
  return dist;
}

}  // namespace mmsoc::analysis
