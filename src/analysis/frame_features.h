// Per-frame features for video content analysis (§5).
#pragma once

#include <array>
#include <cstdint>

#include "video/frame.h"

namespace mmsoc::analysis {

/// Compact per-frame descriptor used by all video detectors.
struct FrameFeatures {
  double mean_luma = 0.0;
  double luma_variance = 0.0;
  double saturation = 0.0;  ///< mean chroma distance from neutral
  std::array<std::uint32_t, 16> luma_histogram{};  ///< 16-bin histogram
};

/// Extract features from one frame.
[[nodiscard]] FrameFeatures extract_features(const video::Frame& frame);

/// L1 distance between two luma histograms, normalized to [0, 2].
[[nodiscard]] double histogram_distance(const FrameFeatures& a,
                                        const FrameFeatures& b) noexcept;

}  // namespace mmsoc::analysis
