#include "analysis/detectors.h"

#include <algorithm>

namespace mmsoc::analysis {

bool is_black_frame(const FrameFeatures& f, const BlackFrameParams& p) noexcept {
  return f.mean_luma <= p.max_mean_luma && f.luma_variance <= p.max_variance;
}

std::vector<Segment> BlackFrameCommercialDetector::segment(
    std::span<const FrameFeatures> frames) const {
  std::vector<Segment> out;
  const int n = static_cast<int>(frames.size());
  if (n == 0) return out;

  // Pass 1: mark black runs, collecting content blocks between them.
  struct Block {
    int begin, end;
    bool black;
  };
  std::vector<Block> blocks;
  int i = 0;
  while (i < n) {
    const bool black = is_black_frame(frames[static_cast<std::size_t>(i)], params_.black);
    int j = i + 1;
    while (j < n &&
           is_black_frame(frames[static_cast<std::size_t>(j)], params_.black) == black) {
      ++j;
    }
    blocks.push_back(Block{i, j, black});
    i = j;
  }

  // Pass 2: short black runs are not separators — merge them into
  // neighbouring content (a dark scene moment is not a boundary). A
  // content block is a commercial only when it is short AND adjacent to a
  // real black separator: commercials come bracketed by black, while an
  // unbroken short recording is just a short program.
  const auto is_separator = [&](std::size_t idx) {
    return idx < blocks.size() && blocks[idx].black &&
           blocks[idx].end - blocks[idx].begin >= params_.min_separator_frames;
  };
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const auto& b = blocks[bi];
    if (is_separator(bi)) {
      out.push_back(Segment{b.begin, b.end, ContentLabel::kBlack});
      continue;
    }
    const int len = b.end - b.begin;
    const bool bracketed = (bi > 0 && is_separator(bi - 1)) || is_separator(bi + 1);
    const auto label = (!b.black && bracketed && len <= params_.max_commercial_frames)
                           ? ContentLabel::kCommercial
                           : ContentLabel::kProgram;
    // Short black runs fall through here and inherit content labeling.
    out.push_back(Segment{b.begin, b.end, label});
  }

  // Merge adjacent segments with identical labels.
  std::vector<Segment> merged;
  for (const auto& s : out) {
    if (!merged.empty() && merged.back().label == s.label &&
        merged.back().end == s.begin) {
      merged.back().end = s.end;
    } else {
      merged.push_back(s);
    }
  }
  return merged;
}

std::vector<Segment> ColorBurstCommercialDetector::segment(
    std::span<const FrameFeatures> frames) const {
  std::vector<Segment> out;
  const int n = static_cast<int>(frames.size());
  if (n == 0) return out;

  // Per-frame color decision, then run-length smoothing.
  std::vector<ContentLabel> labels(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    labels[static_cast<std::size_t>(i)] =
        frames[static_cast<std::size_t>(i)].saturation > params_.bw_saturation_max
            ? ContentLabel::kCommercial  // color content
            : ContentLabel::kProgram;    // black-and-white movie
  }
  // Smooth runs shorter than min_segment_frames into their predecessor.
  int i = 0;
  while (i < n) {
    int j = i + 1;
    while (j < n && labels[static_cast<std::size_t>(j)] == labels[static_cast<std::size_t>(i)]) ++j;
    if (j - i < params_.min_segment_frames && !out.empty()) {
      out.back().end = j;  // absorb the blip
    } else {
      out.push_back(Segment{i, j, labels[static_cast<std::size_t>(i)]});
    }
    i = j;
  }
  // Merge equal-label neighbours created by absorption.
  std::vector<Segment> merged;
  for (const auto& s : out) {
    if (!merged.empty() && merged.back().label == s.label) {
      merged.back().end = s.end;
    } else {
      merged.push_back(s);
    }
  }
  return merged;
}

std::vector<int> SceneCutDetector::detect(
    std::span<const FrameFeatures> frames) const {
  std::vector<int> cuts;
  if (frames.empty()) return cuts;
  cuts.push_back(0);
  for (std::size_t i = 1; i < frames.size(); ++i) {
    if (histogram_distance(frames[i - 1], frames[i]) > params_.threshold) {
      cuts.push_back(static_cast<int>(i));
    }
  }
  return cuts;
}

DetectionScore score_segments(std::span<const Segment> predicted,
                              std::span<const Segment> truth,
                              int total_frames) {
  // Expand to per-frame labels; frames not covered default to kProgram.
  const auto expand = [total_frames](std::span<const Segment> segs) {
    std::vector<ContentLabel> labels(static_cast<std::size_t>(total_frames),
                                     ContentLabel::kProgram);
    for (const auto& s : segs) {
      for (int i = std::max(0, s.begin);
           i < std::min(total_frames, s.end); ++i) {
        labels[static_cast<std::size_t>(i)] = s.label;
      }
    }
    return labels;
  };
  const auto p = expand(predicted);
  const auto t = expand(truth);

  std::int64_t tp = 0, fp = 0, fn = 0;
  for (int i = 0; i < total_frames; ++i) {
    const bool pc = p[static_cast<std::size_t>(i)] == ContentLabel::kCommercial;
    const bool tc = t[static_cast<std::size_t>(i)] == ContentLabel::kCommercial;
    if (pc && tc) ++tp;
    if (pc && !tc) ++fp;
    if (!pc && tc) ++fn;
  }
  DetectionScore s;
  s.precision = (tp + fp) > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 0.0;
  s.recall = (tp + fn) > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 0.0;
  return s;
}

std::vector<Segment> playback_ranges(std::span<const Segment> segments) {
  std::vector<Segment> out;
  for (const auto& s : segments) {
    if (s.label != ContentLabel::kProgram) continue;
    if (!out.empty() && out.back().end == s.begin) {
      out.back().end = s.end;
    } else {
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace mmsoc::analysis
