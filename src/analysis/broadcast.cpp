#include "analysis/broadcast.h"

namespace mmsoc::analysis {

SyntheticBroadcast::SyntheticBroadcast(const BroadcastSpec& spec)
    : width_(spec.width), height_(spec.height) {
  std::uint64_t seed = spec.seed;

  const auto add_piece = [&](int frames, ContentLabel label,
                             double saturation) {
    Piece p;
    if (label == ContentLabel::kBlack) {
      p.scene = video::scene_flat(seed++);
      p.scene.brightness = 16.0;
      p.scene.detail = 0.0;
      p.scene.noise_sigma = 0.0;
      p.scene.saturation = 0.0;
    } else {
      p.scene = label == ContentLabel::kCommercial
                    ? video::scene_high_motion(seed++)
                    : video::scene_low_motion(seed++);
      p.scene.saturation = saturation;
    }
    p.frames = frames;
    p.label = label;
    truth_.push_back(Segment{total_frames_, total_frames_ + frames, label});
    total_frames_ += frames;
    pieces_.push_back(p);
  };

  for (int ps = 0; ps < spec.program_segments; ++ps) {
    add_piece(spec.program_frames, ContentLabel::kProgram,
              spec.program_saturation);
    if (ps + 1 < spec.program_segments) {
      for (int c = 0; c < spec.commercials_per_break; ++c) {
        add_piece(spec.separator_frames, ContentLabel::kBlack, 0.0);
        add_piece(spec.commercial_frames, ContentLabel::kCommercial,
                  spec.commercial_saturation);
      }
      add_piece(spec.separator_frames, ContentLabel::kBlack, 0.0);
    }
  }
}

std::optional<video::Frame> SyntheticBroadcast::next() {
  if (piece_idx_ >= pieces_.size()) return std::nullopt;
  const auto& piece = pieces_[piece_idx_];
  video::Frame f = piece.label == ContentLabel::kBlack
                       ? video::Frame::black(width_, height_)
                       : video::SyntheticVideo::render(width_, height_,
                                                       piece.scene,
                                                       frame_in_piece_);
  if (++frame_in_piece_ >= piece.frames) {
    frame_in_piece_ = 0;
    ++piece_idx_;
  }
  return f;
}

}  // namespace mmsoc::analysis
