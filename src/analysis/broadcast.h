// Synthetic broadcast composer (DESIGN.md §3 substitution).
//
// Builds a TV-like frame stream: program segments interleaved with
// commercial breaks, separated by runs of black frames, with per-segment
// saturation control (black-and-white movie vs colorful commercials) —
// giving the §5 detectors labeled ground truth to be scored against.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/detectors.h"
#include "video/frame.h"
#include "video/source.h"

namespace mmsoc::analysis {

struct BroadcastSpec {
  int width = 64;
  int height = 64;
  int program_segments = 3;        ///< program blocks
  int program_frames = 90;         ///< frames per program block
  int commercials_per_break = 2;   ///< commercials between program blocks
  int commercial_frames = 30;      ///< frames per commercial
  int separator_frames = 3;        ///< black frames around each commercial
  double program_saturation = 0.0; ///< 0 = black-and-white movie
  double commercial_saturation = 45.0;
  std::uint64_t seed = 1;
};

/// A scripted broadcast: streams frames and knows the true segmentation.
class SyntheticBroadcast {
 public:
  explicit SyntheticBroadcast(const BroadcastSpec& spec);

  std::optional<video::Frame> next();

  [[nodiscard]] int total_frames() const noexcept { return total_frames_; }
  [[nodiscard]] const std::vector<Segment>& ground_truth() const noexcept {
    return truth_;
  }

 private:
  struct Piece {
    video::SceneParams scene;
    int frames;
    ContentLabel label;
  };
  std::vector<Piece> pieces_;
  std::vector<Segment> truth_;
  int total_frames_ = 0;
  int width_, height_;
  std::size_t piece_idx_ = 0;
  int frame_in_piece_ = 0;
};

}  // namespace mmsoc::analysis
