// Scene-adaptive GOP control: content analysis feeding back into the
// encoder.
//
// §5's segmentation research meets §3's codec: a P frame predicted across
// a scene cut wastes bits on a hopeless prediction and decodes badly. The
// controller watches the incoming frames with the histogram scene-cut
// detector and tells the encoder to force an I frame exactly at cuts
// (plus a maximum-interval refresh for error resilience).
#pragma once

#include <optional>

#include "analysis/detectors.h"
#include "analysis/frame_features.h"
#include "video/frame.h"

namespace mmsoc::analysis {

class AdaptiveGopController {
 public:
  struct Params {
    SceneCutDetector::Params cut;
    int max_interval = 60;  ///< force refresh at least this often
  };

  AdaptiveGopController() = default;
  explicit AdaptiveGopController(const Params& params) : params_(params) {}

  /// Observe the next frame to be encoded. Returns true if it should be
  /// coded intra (scene cut detected, refresh due, or first frame).
  bool observe(const video::Frame& frame);

  [[nodiscard]] int cuts_detected() const noexcept { return cuts_; }

  void reset() noexcept {
    prev_.reset();
    since_intra_ = 0;
    cuts_ = 0;
  }

 private:
  Params params_;
  std::optional<FrameFeatures> prev_;
  int since_intra_ = 0;
  int cuts_ = 0;
};

}  // namespace mmsoc::analysis
