// Cross-module integration tests: the end-to-end device pipelines the
// examples demonstrate, verified with assertions.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/broadcast.h"
#include "analysis/detectors.h"
#include "analysis/frame_features.h"
#include "audio/metrics.h"
#include "audio/rpe_ltp.h"
#include "audio/source.h"
#include "audio/subband_codec.h"
#include "core/appgraphs.h"
#include "core/deploy.h"
#include "core/profiles.h"
#include "drm/authority.h"
#include "drm/player.h"
#include "fs/block_device.h"
#include "fs/fat.h"
#include "net/link.h"
#include "net/rtp.h"
#include "net/tcp_lite.h"
#include "video/codec.h"
#include "video/metrics.h"
#include "video/source.h"

namespace mmsoc {
namespace {

// ------------------------------------------------------------ DVR pipeline

TEST(Integration, DvrRecordStoreAnalyzeSkip) {
  // Broadcast -> encode -> store on FAT -> read back -> decode -> detect
  // commercials -> verify skip list against ground truth.
  analysis::BroadcastSpec spec;
  spec.width = 64;
  spec.height = 64;
  spec.program_segments = 2;
  spec.program_frames = 60;
  spec.commercials_per_break = 1;
  spec.commercial_frames = 24;
  spec.separator_frames = 3;
  spec.seed = 5;
  analysis::SyntheticBroadcast broadcast(spec);

  video::EncoderConfig cfg;
  cfg.width = 64;
  cfg.height = 64;
  cfg.gop_size = 12;
  video::VideoEncoder encoder(cfg);

  fs::BlockDevice disk(8192, 512);
  auto volume = fs::FatVolume::format(disk).value();

  // Record: length-prefixed access units into one file.
  std::vector<std::uint8_t> recording;
  std::vector<video::Frame> originals;
  while (auto frame = broadcast.next()) {
    originals.push_back(*frame);
    const auto e = encoder.encode(*frame);
    recording.push_back(static_cast<std::uint8_t>(e.bytes.size() >> 16));
    recording.push_back(static_cast<std::uint8_t>(e.bytes.size() >> 8));
    recording.push_back(static_cast<std::uint8_t>(e.bytes.size()));
    recording.insert(recording.end(), e.bytes.begin(), e.bytes.end());
  }
  ASSERT_TRUE(volume.write_file("/show.mmv", recording).is_ok());

  // Play back from disk, decode, and analyze the *decoded* frames (the
  // real DVR analyzes what it stored, not the pristine input).
  const auto stored = volume.read_file("/show.mmv").value();
  ASSERT_EQ(stored, recording);
  video::VideoDecoder decoder;
  std::vector<analysis::FrameFeatures> features;
  std::size_t pos = 0;
  std::size_t frame_idx = 0;
  double psnr_sum = 0.0;
  while (pos + 3 <= stored.size()) {
    const std::size_t len = (static_cast<std::size_t>(stored[pos]) << 16) |
                            (static_cast<std::size_t>(stored[pos + 1]) << 8) |
                            stored[pos + 2];
    pos += 3;
    ASSERT_LE(pos + len, stored.size());
    auto decoded = decoder.decode({stored.data() + pos, len});
    pos += len;
    ASSERT_TRUE(decoded.is_ok());
    psnr_sum += video::psnr_luma(originals[frame_idx], decoded.value());
    features.push_back(analysis::extract_features(decoded.value()));
    ++frame_idx;
  }
  ASSERT_EQ(frame_idx, originals.size());
  EXPECT_GT(psnr_sum / static_cast<double>(frame_idx), 28.0);

  // Detection still works on lossy-decoded frames.
  analysis::BlackFrameCommercialDetector::Params params;
  params.max_commercial_frames = 40;
  const auto segments =
      analysis::BlackFrameCommercialDetector(params).segment(features);
  const auto score = analysis::score_segments(
      segments, broadcast.ground_truth(), broadcast.total_frames());
  EXPECT_GT(score.f1(), 0.9);

  const auto play = analysis::playback_ranges(segments);
  int shown = 0;
  for (const auto& s : play) shown += s.end - s.begin;
  EXPECT_EQ(shown, spec.program_segments * spec.program_frames);
}

// -------------------------------------------------- protected audio player

TEST(Integration, ProtectedAudioEndToEnd) {
  // Encode -> encrypt -> store -> authorize -> decrypt -> decode, with the
  // DRM rights marker carried in the Fig. 2 ancillary field.
  const double fs_hz = 32000.0;
  audio::AudioEncoderConfig acfg;
  acfg.sample_rate = fs_hz;
  acfg.bitrate_bps = 192000.0;
  audio::SubbandEncoder enc(acfg);
  const int granules = 8;
  const auto music = audio::make_music(
      static_cast<std::size_t>(audio::kGranuleSamples) * granules, fs_hz, 9);

  const drm::XteaKey master = {1, 2, 3, 4};
  drm::LicenseAuthority authority(master);
  const auto content_key = authority.register_title(9);
  const auto device_key = authority.register_device(5);
  drm::Rights rights;
  rights.title = 9;
  rights.plays_remaining = 1;
  rights.devices = {5};
  authority.grant(rights);

  const std::vector<std::uint8_t> marker = {0x44, 0x52, 0x4D};
  std::vector<std::uint8_t> stream;
  for (int g = 0; g < granules; ++g) {
    const auto e = enc.encode(
        std::span<const double, audio::kGranuleSamples>(
            music.data() + g * audio::kGranuleSamples, audio::kGranuleSamples),
        marker);
    stream.push_back(static_cast<std::uint8_t>(e.bytes.size() >> 8));
    stream.push_back(static_cast<std::uint8_t>(e.bytes.size()));
    stream.insert(stream.end(), e.bytes.begin(), e.bytes.end());
  }
  drm::XteaCtr ctr(content_key, 9);
  ctr.crypt(stream);

  fs::BlockDevice disk(4096, 512);
  auto volume = fs::FatVolume::format(disk).value();
  ASSERT_TRUE(volume.write_file("/t9.enc", stream).is_ok());

  drm::PlaybackDevice player(5, device_key,
                             [&](drm::TitleId t, drm::Timestamp now) {
                               return authority.request_license(t, 5, now);
                             });
  const auto file = volume.read_file("/t9.enc").value();
  const auto res = player.play(9, 100, file, drm::OutputPath::kAnalog, 9);
  ASSERT_TRUE(res.allowed());

  audio::SubbandDecoder dec;
  std::vector<double> pcm;
  std::size_t pos = 0;
  while (pos + 2 <= res.content.size()) {
    const std::size_t len = (static_cast<std::size_t>(res.content[pos]) << 8) |
                            res.content[pos + 1];
    pos += 2;
    ASSERT_LE(pos + len, res.content.size());
    auto d = dec.decode({res.content.data() + pos, len});
    pos += len;
    ASSERT_TRUE(d.is_ok());
    EXPECT_EQ(d.value().ancillary, marker);  // rights marker intact
    pcm.insert(pcm.end(), d.value().samples.begin(), d.value().samples.end());
  }
  std::vector<double> ref(music.begin(), music.end() - audio::kSubbands);
  std::vector<double> test(pcm.begin() + audio::kSubbands, pcm.end());
  EXPECT_GT(audio::segmental_snr_db(
                std::span<const double>(ref).subspan(audio::kGranuleSamples),
                std::span<const double>(test).subspan(audio::kGranuleSamples)),
            15.0);

  // Second play exhausts the 1-play right.
  EXPECT_FALSE(player.play(9, 101, file, drm::OutputPath::kAnalog, 9).allowed());
}

// ------------------------------------------------- media over the network

TEST(Integration, VideoOverRtpLossyLink) {
  // Encoded access units streamed over a 3% lossy link; everything that
  // plays un-concealed must decode bit-exactly to the sender's recon.
  constexpr int kFrames = 30;
  video::EncoderConfig cfg;
  cfg.width = 64;
  cfg.height = 64;
  cfg.gop_size = 5;  // frequent I frames bound loss propagation
  video::VideoEncoder encoder(cfg);
  const auto scene = video::scene_low_motion(15);

  net::LinkParams lp;
  lp.bandwidth_bps = 5e6;
  lp.latency_us = 10000.0;
  lp.loss_probability = 0.03;
  lp.seed = 77;
  net::LossyLink link(lp);
  net::RtpSender tx;
  net::RtpReceiver rx(3);
  video::VideoDecoder decoder;

  double now = 0.0;
  int displayed = 0, decode_failures = 0;
  bool reference_intact = true;  // decoder has seen every frame so far
  for (int i = 0; i < kFrames; ++i, now += 33333.0) {
    const auto frame = video::SyntheticVideo::render(64, 64, scene, i);
    const auto e = encoder.encode(frame);
    link.send(tx.packetize(e.bytes, static_cast<std::uint32_t>(i)), now);
    while (auto pkt = link.receive(now)) rx.push(*pkt, now);
    while (auto unit = rx.pop()) {
      if (unit->concealed) {
        reference_intact = false;  // P chain broken until next I frame
        continue;
      }
      auto d = decoder.decode(unit->payload);
      if (d.is_ok()) {
        ++displayed;
      } else {
        ++decode_failures;
        // Only acceptable when the reference chain was broken by loss.
        EXPECT_FALSE(reference_intact);
      }
      // An I frame repairs the chain regardless of history.
      if (d.is_ok()) reference_intact = true;
    }
  }
  EXPECT_GT(displayed, kFrames / 2);
}

TEST(Integration, GsmSpeechOverTcpLite) {
  // Speech frames carried over the reliable stream across a 10% lossy
  // link: every frame arrives, decoder output matches a direct local
  // decode bit-for-bit.
  const int frames = 20;
  const auto speech = audio::make_speech(
      static_cast<std::size_t>(audio::kGsmFrameSamples) * frames, 8000.0, 19);
  const auto pcm = audio::to_pcm16(speech);

  audio::RpeLtpEncoder enc;
  std::vector<std::uint8_t> bitstream;
  for (int f = 0; f < frames; ++f) {
    const auto bytes = enc.encode(
        std::span<const std::int16_t, audio::kGsmFrameSamples>(
            pcm.data() + static_cast<std::size_t>(f) * audio::kGsmFrameSamples,
            audio::kGsmFrameSamples));
    bitstream.insert(bitstream.end(), bytes.begin(), bytes.end());
  }

  net::LinkParams lp;
  lp.latency_us = 1000.0;
  lp.loss_probability = 0.1;
  lp.seed = 21;
  const auto result = net::run_bulk_transfer(bitstream, lp, 30e6);
  ASSERT_TRUE(result.complete);
  ASSERT_EQ(result.delivered, bitstream);

  audio::RpeLtpDecoder remote, local;
  for (int f = 0; f < frames; ++f) {
    const std::span<const std::uint8_t> frame_bytes(
        result.delivered.data() +
            static_cast<std::size_t>(f) * audio::kGsmFrameBytes,
        audio::kGsmFrameBytes);
    auto a = remote.decode(frame_bytes);
    auto b = local.decode(
        {bitstream.data() + static_cast<std::size_t>(f) * audio::kGsmFrameBytes,
         audio::kGsmFrameBytes});
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    EXPECT_EQ(a.value(), b.value());
  }
}

// ----------------------------------------- measured workloads onto silicon

TEST(Integration, MeasuredWorkloadsMapOntoEveryDevice) {
  // The full chain the core layer exists for: run the real codecs, take
  // their measured op counts, and verify every §2 device class schedules
  // its primary workload feasibly with both HEFT and annealing.
  video::EncoderConfig cfg;
  cfg.width = 64;
  cfg.height = 64;
  cfg.gop_size = 6;
  video::VideoEncoder enc(cfg);
  const auto scene = video::scene_low_motion(23);
  video::StageOps vops;
  for (int i = 0; i < 6; ++i) {
    vops += enc.encode(video::SyntheticVideo::render(64, 64, scene, i)).ops;
  }
  audio::AudioEncoderConfig acfg;
  acfg.sample_rate = 32000.0;
  audio::SubbandEncoder aenc(acfg);
  const auto music = audio::make_music(audio::kGranuleSamples, 32000.0, 24);
  const auto aops = aenc
                        .encode(std::span<const double, audio::kGranuleSamples>(
                            music.data(), audio::kGranuleSamples))
                        .ops;

  const auto devices = core::consumer_devices();
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const auto graph = core::device_workload(64, 64, vops, aops,
                                             static_cast<std::uint8_t>(i));
    const auto platform = core::device_platform(devices[i]);
    ASSERT_TRUE(platform.can_run(graph)) << platform.name;
    for (const auto mapper :
         {mpsoc::MapperKind::kHeft, mpsoc::MapperKind::kSimulatedAnnealing}) {
      const auto r = core::evaluate(graph, platform, mapper,
                                    core::realtime_target_hz(devices[i]));
      EXPECT_TRUE(r.feasible)
          << graph.name() << " on " << platform.name << " via "
          << mpsoc::to_string(mapper);
    }
  }
}

}  // namespace
}  // namespace mmsoc
