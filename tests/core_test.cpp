// Tests for the core integration layer: device profiles, application
// graph builders, deployment evaluation, symmetric/asymmetric study.
#include <gtest/gtest.h>

#include "audio/source.h"
#include "core/appgraphs.h"
#include "core/deploy.h"
#include "core/profiles.h"
#include "video/source.h"

namespace mmsoc::core {
namespace {

// Measured encoder ops for a small frame, shared across tests.
video::StageOps measured_encode_ops() {
  video::EncoderConfig cfg;
  cfg.width = 64;
  cfg.height = 64;
  cfg.gop_size = 4;
  video::VideoEncoder enc(cfg);
  const auto scene = video::scene_low_motion(3);
  video::StageOps total;
  for (int i = 0; i < 4; ++i) {
    total += enc.encode(video::SyntheticVideo::render(64, 64, scene, i)).ops;
  }
  return total;
}

audio::AudioStageOps measured_audio_ops() {
  audio::AudioEncoderConfig cfg;
  cfg.sample_rate = 32000.0;
  audio::SubbandEncoder enc(cfg);
  const auto music = audio::make_music(audio::kGranuleSamples, 32000.0, 4);
  return enc
      .encode(std::span<const double, audio::kGranuleSamples>(
          music.data(), audio::kGranuleSamples))
      .ops;
}

// ----------------------------------------------------------------- profiles

TEST(Profiles, AllDevicesHavePes) {
  for (const auto device : consumer_devices()) {
    const auto p = device_platform(device);
    EXPECT_FALSE(p.pes.empty()) << to_string(device);
    EXPECT_GT(p.total_area_mm2(), 0.0);
    EXPECT_GT(realtime_target_hz(device), 0.0);
  }
}

TEST(Profiles, CostPowerOrderingMatchesProductClass) {
  // §2: devices cover "a broad range of cost/performance/power points".
  const auto phone = device_platform(DeviceClass::kCellPhone);
  const auto player = device_platform(DeviceClass::kAudioPlayer);
  const auto settop = device_platform(DeviceClass::kSetTopBox);
  const auto headend = device_platform(DeviceClass::kBroadcastHeadend);
  EXPECT_LT(player.total_area_mm2(), phone.total_area_mm2());
  EXPECT_LT(phone.total_area_mm2(), settop.total_area_mm2());
  EXPECT_LT(settop.total_area_mm2(), headend.total_area_mm2());
}

// ---------------------------------------------------------------- appgraphs

TEST(AppGraphs, EncoderGraphIsValidDag) {
  const auto g = video_encoder_graph(64, 64, measured_encode_ops());
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(g.task_count(), 9u);
  EXPECT_GT(g.total_work(), 0.0);
  EXPECT_GT(g.total_traffic(), 0.0);
}

TEST(AppGraphs, EncoderHeavierThanDecoder) {
  // §2/§3: the encoder carries motion estimation, the decoder does not.
  const auto ops = measured_encode_ops();
  const auto enc = video_encoder_graph(64, 64, ops);
  const auto dec = video_decoder_graph(64, 64, ops);
  EXPECT_GT(enc.total_work(), 1.5 * dec.total_work());
}

TEST(AppGraphs, ConferenceGraphCombinesBoth) {
  const auto ops = measured_encode_ops();
  const auto enc = video_encoder_graph(64, 64, ops);
  const auto dec = video_decoder_graph(64, 64, ops);
  const auto conf = videoconference_graph(64, 64, ops);
  EXPECT_TRUE(conf.is_acyclic());
  EXPECT_EQ(conf.task_count(), enc.task_count() + dec.task_count());
  EXPECT_NEAR(conf.total_work(), enc.total_work() + dec.total_work(), 1.0);
}

TEST(AppGraphs, AudioGraphMatchesFig2Structure) {
  const auto g = audio_encoder_graph(measured_audio_ops());
  EXPECT_TRUE(g.is_acyclic());
  ASSERT_EQ(g.task_count(), 5u);
  // Psychoacoustic model feeds the quantizer but not the mapper (Fig. 2).
  bool psycho_to_quant = false, psycho_to_mapper = false;
  for (const auto& e : g.edges()) {
    if (g.task(e.src).name == "psychoacoustic-model") {
      if (g.task(e.dst).name == "quantizer-coder") psycho_to_quant = true;
      if (g.task(e.dst).name == "mapper-filterbank") psycho_to_mapper = true;
    }
  }
  EXPECT_TRUE(psycho_to_quant);
  EXPECT_FALSE(psycho_to_mapper);
}

TEST(AppGraphs, GsmGraphRunsOnPhone) {
  const auto g = gsm_codec_graph();
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_TRUE(device_platform(DeviceClass::kCellPhone).can_run(g));
}

TEST(AppGraphs, DvrGraphIncludesAnalysis) {
  const auto g = dvr_analysis_graph(64, 64, measured_encode_ops());
  EXPECT_TRUE(g.is_acyclic());
  bool has_detector = false;
  for (mpsoc::TaskId t = 0; t < g.task_count(); ++t) {
    if (g.task(t).name == "commercial-detector") has_detector = true;
  }
  EXPECT_TRUE(has_detector);
}

// ------------------------------------------------------------------- deploy

TEST(Deploy, EncoderOnCameraMeetsRealtime) {
  const auto g = video_encoder_graph(64, 64, measured_encode_ops());
  const auto r = evaluate(g, device_platform(DeviceClass::kVideoCamera),
                          mpsoc::MapperKind::kHeft, 30.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.meets_realtime) << report_row(r);
  EXPECT_GT(r.average_power_w, 0.0);
  EXPECT_GT(r.mean_utilization, 0.0);
  EXPECT_LE(r.mean_utilization, 1.0);
}

TEST(Deploy, DecoderCheaperThanEncoderOnSamePlatform) {
  const auto ops = measured_encode_ops();
  const auto platform = device_platform(DeviceClass::kSetTopBox);
  const auto enc = evaluate(video_encoder_graph(64, 64, ops), platform,
                            mpsoc::MapperKind::kHeft, 30.0);
  const auto dec = evaluate(video_decoder_graph(64, 64, ops), platform,
                            mpsoc::MapperKind::kHeft, 30.0);
  ASSERT_TRUE(enc.feasible);
  ASSERT_TRUE(dec.feasible);
  EXPECT_GT(dec.throughput_hz, enc.throughput_hz);
  EXPECT_LT(dec.energy_per_iteration_mj, enc.energy_per_iteration_mj);
}

TEST(Deploy, SymmetryStudyShowsAsymmetry) {
  const auto report = symmetry_study(64, 64, measured_encode_ops());
  // §2/§3: encoding costs several times decoding.
  EXPECT_GT(report.compute_ratio, 1.5);
  // The asymmetric receiver is cheaper silicon than an encode-capable one.
  EXPECT_LT(report.receiver_area_ratio, 1.0);
  // Set-top decode meets broadcast rate.
  ASSERT_TRUE(report.settop_decoder.feasible);
  EXPECT_TRUE(report.settop_decoder.meets_realtime);
  // Headend encodes in real time with its big silicon.
  ASSERT_TRUE(report.headend_encoder.feasible);
  EXPECT_TRUE(report.headend_encoder.meets_realtime);
}

TEST(Deploy, DeviceStudyCoversAllConsumerDevices) {
  const auto reports =
      device_study(64, 64, measured_encode_ops(), measured_audio_ops());
  ASSERT_EQ(reports.size(), consumer_devices().size());
  for (const auto& r : reports) {
    EXPECT_TRUE(r.feasible) << r.application << " on " << r.platform;
  }
  // The audio player draws the least power of all devices.
  double player_power = 1e9, max_power = 0.0;
  for (const auto& r : reports) {
    if (r.platform == "audio-player") player_power = r.average_power_w;
    max_power = std::max(max_power, r.average_power_w);
  }
  EXPECT_LT(player_power, max_power);
}

TEST(Deploy, ReportRowFormatting) {
  const auto g = gsm_codec_graph();
  const auto r = evaluate(g, device_platform(DeviceClass::kCellPhone),
                          mpsoc::MapperKind::kHeft, 50.0);
  const auto row = report_row(r);
  EXPECT_NE(row.find("gsm-rpe-ltp"), std::string::npos);
  EXPECT_NE(row.find("cell-phone"), std::string::npos);
  EXPECT_FALSE(report_header().empty());
}

TEST(Deploy, DvfsSweepScalesThroughputAndPower) {
  const auto g = video_encoder_graph(64, 64, measured_encode_ops());
  const auto platform = device_platform(DeviceClass::kVideoCamera);
  const double factors[] = {0.25, 0.5, 1.0, 1.5};
  const auto sweep = dvfs_sweep(g, platform, mpsoc::MapperKind::kHeft, 30.0,
                                factors);
  ASSERT_EQ(sweep.size(), 4u);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    ASSERT_TRUE(sweep[i].report.feasible);
    // Faster clock: more throughput, more power (compute-bound graph).
    EXPECT_GT(sweep[i].report.throughput_hz,
              sweep[i - 1].report.throughput_hz);
    EXPECT_GT(sweep[i].report.average_power_w,
              sweep[i - 1].report.average_power_w);
  }
}

TEST(Deploy, OperatingPointPicksLowestPowerMeetingTarget) {
  const auto g = video_encoder_graph(64, 64, measured_encode_ops());
  const auto platform = device_platform(DeviceClass::kVideoCamera);
  const double factors[] = {0.0625, 0.125, 0.25, 0.5, 1.0};
  const auto sweep = dvfs_sweep(g, platform, mpsoc::MapperKind::kHeft, 30.0,
                                factors);
  const auto pick = pick_operating_point(sweep);
  ASSERT_TRUE(pick.report.feasible);
  EXPECT_TRUE(pick.report.meets_realtime);
  // The pick draws no more power than running flat out.
  EXPECT_LE(pick.report.average_power_w,
            sweep.back().report.average_power_w + 1e-12);
  // And every slower point in the sweep misses the target.
  for (const auto& p : sweep) {
    if (p.clock_factor < pick.clock_factor) {
      EXPECT_FALSE(p.report.meets_realtime)
          << "factor " << p.clock_factor << " also met target";
    }
  }
}

TEST(Deploy, ScaledPlatformPowerModel) {
  const auto base = device_platform(DeviceClass::kCellPhone);
  const auto half = mpsoc::scaled_platform(base, 0.5);
  ASSERT_EQ(half.pes.size(), base.pes.size());
  EXPECT_DOUBLE_EQ(half.pes[0].clock_hz, base.pes[0].clock_hz * 0.5);
  EXPECT_NEAR(half.pes[0].active_power_w, base.pes[0].active_power_w * 0.125,
              1e-12);
  EXPECT_NEAR(half.pes[0].idle_power_w, base.pes[0].idle_power_w * 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(half.total_area_mm2(), base.total_area_mm2());
}

TEST(Deploy, GsmRealtimeOnPhoneWithHugeMargin) {
  // A 13 kbit/s speech codec is trivial for even the phone SoC — the
  // margin should be orders of magnitude.
  const auto r = evaluate(gsm_codec_graph(),
                          device_platform(DeviceClass::kCellPhone),
                          mpsoc::MapperKind::kHeft, 50.0);
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.realtime_margin, 50.0);
}

}  // namespace
}  // namespace mmsoc::core
