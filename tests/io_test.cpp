// Async I/O boundary subsystem: IoContext, AsyncSource/AsyncSink
// adapters, RTP/block endpoints, and the two boundary session types.
// Runs in the ThreadSanitizer matrix: the IoContext <-> worker hand-off
// (gate publish, task_waker, buffer mutation) is exactly the kind of
// race that never crashes an ordinary run.
#include <atomic>
#include <chrono>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/engine.h"
#include "runtime/io.h"
#include "runtime/pipelines.h"
#include "runtime/shard.h"

namespace {

using namespace mmsoc;
using namespace mmsoc::runtime;
using mpsoc::Payload;
using mpsoc::TaskFiring;
using mpsoc::TaskGraph;
using mpsoc::TaskId;

Payload unit_payload(std::uint64_t i, std::size_t size = 32) {
  Payload p(size);
  for (std::size_t k = 0; k < size; ++k) {
    p[k] = static_cast<std::uint8_t>(i * 131 + k);
  }
  return p;
}

mpsoc::Task task(const char* name, double work_ops) {
  mpsoc::Task t;
  t.name = name;
  t.work_ops = work_ops;
  return t;
}

TEST(IoContext, ExecutesJobsThenStopsIdempotently) {
  IoContext io(IoContextOptions{.threads = 2, .queue_capacity = 64});
  EXPECT_EQ(io.thread_count(), 2u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(io.post([&ran] { ran.fetch_add(1); }));
  }
  io.stop();
  EXPECT_EQ(ran.load(), 50);
  EXPECT_GE(io.stats().jobs, 50u);
  EXPECT_FALSE(io.post([] {})) << "post after stop must be rejected";
  io.stop();  // idempotent
}

// Minimal boundary graph: gated source -> collecting sink.
struct Collector {
  std::vector<Payload> got;
};

TEST(AsyncBoundary, SourceDeliversInOrderAndEngineAccountsStalls) {
  constexpr std::uint64_t kUnits = 24;
  IoContext io;
  // A deliberately slow device: every read sleeps 1 ms on the I/O
  // thread, so the pipeline must stall at the gate (and the engine must
  // bill that as io_stall, not compute).
  AsyncSource source(
      io,
      [](std::uint64_t i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return std::optional<Payload>(unit_payload(i));
      },
      /*depth=*/2);

  TaskGraph g("gated-source");
  const TaskId src = g.add_task(task("src", 10));
  const TaskId snk = g.add_task(task("snk", 10));
  ASSERT_TRUE(g.add_edge(src, snk, 32).is_ok());
  source.bind(g, src);
  auto collector = std::make_shared<Collector>();
  g.set_body(snk, [collector](TaskFiring& f) {
    collector->got.push_back(*f.inputs[0]);
  });

  EngineOptions opts;
  opts.workers = 2;
  Engine engine(opts);
  ASSERT_TRUE(engine.start().is_ok());
  auto sid = engine.submit(g, {0, 1}, kUnits);
  ASSERT_TRUE(sid.is_ok()) << sid.status().to_text();
  auto waker = engine.task_waker(sid.value(), src);
  ASSERT_TRUE(waker.is_ok()) << waker.status().to_text();
  source.attach(kUnits, std::move(waker.value()));
  ASSERT_TRUE(engine.wait().is_ok());

  const auto& rep = engine.report(sid.value());
  ASSERT_EQ(rep.outcome, SessionOutcome::kCompleted);
  ASSERT_EQ(collector->got.size(), kUnits);
  for (std::uint64_t i = 0; i < kUnits; ++i) {
    EXPECT_EQ(collector->got[i], unit_payload(i)) << "unit " << i;
  }
  // The 1 ms device latency dominates the ~free compute, so the source
  // must have been seen gate-closed and the wait must be attributed.
  EXPECT_GT(rep.tasks[src].io_stalls, 0u);
  EXPECT_GT(rep.tasks[src].io_stall_s, 0.0);
  EXPECT_GT(rep.io_stall_s, 0.0);
  EXPECT_GT(rep.tasks[src].mean_io_stall_s(), 0.0);
  const auto stats = source.stats();
  EXPECT_EQ(stats.units, kUnits);
  EXPECT_EQ(stats.underruns, 0u);
  EXPECT_GT(stats.io_busy_s, 0.0);
}

TEST(AsyncBoundary, SinkBackpressuresOrderedWritesAndFlushes) {
  constexpr std::uint64_t kUnits = 16;
  IoContext io;
  std::mutex written_mu;
  std::vector<std::pair<std::uint64_t, Payload>> written;
  AsyncSink sink(
      io,
      [&](std::uint64_t i, Payload p) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        std::lock_guard lock(written_mu);
        written.emplace_back(i, std::move(p));
      },
      /*depth=*/2);

  TaskGraph g("gated-sink");
  const TaskId src = g.add_task(task("src", 10));
  const TaskId snk = g.add_task(task("snk", 10));
  ASSERT_TRUE(g.add_edge(src, snk, 32).is_ok());
  g.set_body(src, [](TaskFiring& f) { f.outputs[0] = unit_payload(f.iteration); });
  sink.bind(g, snk);

  EngineOptions opts;
  opts.workers = 2;
  Engine engine(opts);
  ASSERT_TRUE(engine.start().is_ok());
  auto sid = engine.submit(g, {0, 1}, kUnits);
  ASSERT_TRUE(sid.is_ok());
  auto waker = engine.task_waker(sid.value(), snk);
  ASSERT_TRUE(waker.is_ok());
  sink.attach(std::move(waker.value()));
  ASSERT_TRUE(engine.wait().is_ok());
  sink.flush();  // engine drained the graph; drain the device side too

  const auto& rep = engine.report(sid.value());
  ASSERT_EQ(rep.outcome, SessionOutcome::kCompleted);
  std::lock_guard lock(written_mu);
  ASSERT_EQ(written.size(), kUnits);
  for (std::uint64_t i = 0; i < kUnits; ++i) {
    EXPECT_EQ(written[i].first, i);
    EXPECT_EQ(written[i].second, unit_payload(i));
  }
  // The fast producer must have found the depth-2 device buffer full.
  EXPECT_GT(rep.tasks[snk].io_stalls, 0u);
  EXPECT_EQ(sink.stats().units, kUnits);
}

TEST(AsyncBoundary, TruncatedStreamUnderrunsInsteadOfWedging) {
  constexpr std::uint64_t kUnits = 12;
  constexpr std::uint64_t kAvailable = 7;
  IoContext io;
  AsyncSource source(io, [](std::uint64_t i) {
    return i < kAvailable ? std::optional<Payload>(unit_payload(i))
                          : std::nullopt;
  });
  TaskGraph g("truncated");
  const TaskId src = g.add_task(task("src", 10));
  const TaskId snk = g.add_task(task("snk", 10));
  ASSERT_TRUE(g.add_edge(src, snk, 32).is_ok());
  source.bind(g, src);
  std::atomic<std::uint64_t> empties{0};
  g.set_body(snk, [&empties](TaskFiring& f) {
    if (f.inputs[0]->empty()) empties.fetch_add(1);
  });

  EngineOptions eopts;
  eopts.workers = 1;
  Engine engine(eopts);
  ASSERT_TRUE(engine.start().is_ok());
  auto sid = engine.submit(g, {0, 0}, kUnits);
  ASSERT_TRUE(sid.is_ok());
  auto waker = engine.task_waker(sid.value(), src);
  ASSERT_TRUE(waker.is_ok());
  source.attach(kUnits, std::move(waker.value()));
  ASSERT_TRUE(engine.wait().is_ok());
  EXPECT_EQ(engine.report(sid.value()).outcome, SessionOutcome::kCompleted);
  EXPECT_EQ(empties.load(), kUnits - kAvailable);
  EXPECT_EQ(source.stats().underruns, kUnits - kAvailable);
}

TEST(AsyncBoundary, StoppedContextFailsOpenInsteadOfWedging) {
  constexpr std::uint64_t kUnits = 6;
  IoContext io;
  io.stop();  // the pathological ordering: context dies before the session
  AsyncSource source(io, [](std::uint64_t i) {
    return std::optional<Payload>(unit_payload(i));
  });
  std::mutex sink_mu;
  std::uint64_t sunk = 0;
  AsyncSink sink(io, [&](std::uint64_t, Payload) {
    std::lock_guard lock(sink_mu);
    ++sunk;
  });
  TaskGraph g("dead-context");
  const TaskId src = g.add_task(task("src", 10));
  const TaskId snk = g.add_task(task("snk", 10));
  ASSERT_TRUE(g.add_edge(src, snk, 8).is_ok());
  source.bind(g, src);
  sink.bind(g, snk);

  EngineOptions eopts;
  eopts.workers = 1;
  Engine engine(eopts);
  ASSERT_TRUE(engine.start().is_ok());
  auto sid = engine.submit(g, {0, 0}, kUnits);
  ASSERT_TRUE(sid.is_ok());
  auto w1 = engine.task_waker(sid.value(), src);
  auto w2 = engine.task_waker(sid.value(), snk);
  ASSERT_TRUE(w1.is_ok() && w2.is_ok());
  source.attach(kUnits, std::move(w1.value()));
  sink.attach(std::move(w2.value()));
  // The whole point: wait() must return (fail-open), not wedge forever.
  ASSERT_TRUE(engine.wait().is_ok());
  sink.flush();  // must also return
  EXPECT_EQ(engine.report(sid.value()).outcome, SessionOutcome::kCompleted);
  EXPECT_EQ(source.stats().underruns, kUnits);
  EXPECT_EQ(sink.stats().dropped, kUnits);
  std::lock_guard lock(sink_mu);
  EXPECT_EQ(sunk, 0u);
}

TEST(AsyncBoundary, AdapterDestructionQuiescesInflightIo) {
  // A cancelled session leaves the drain job sleeping inside a slow
  // read; destroying the adapter right after wait() must block until
  // that job retires (it would otherwise lock a destroyed mutex).
  IoContext io;
  std::atomic<bool> read_done{false};
  {
    AsyncSource source(io, [&read_done](std::uint64_t i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      read_done.store(true);
      return std::optional<Payload>(unit_payload(i));
    });
    TaskGraph g("cancel-quiesce");
    const TaskId src = g.add_task(task("src", 10));
    const TaskId snk = g.add_task(task("snk", 10));
    ASSERT_TRUE(g.add_edge(src, snk, 8).is_ok());
    source.bind(g, src);
    g.set_body(snk, [](TaskFiring&) {});
    EngineOptions eopts;
  eopts.workers = 1;
  Engine engine(eopts);
    ASSERT_TRUE(engine.start().is_ok());
    auto sid = engine.submit(g, {0, 0}, 100);
    ASSERT_TRUE(sid.is_ok());
    auto waker = engine.task_waker(sid.value(), src);
    ASSERT_TRUE(waker.is_ok());
    source.attach(100, std::move(waker.value()));
    engine.cancel(sid.value());
    ASSERT_TRUE(engine.wait().is_ok());
    // source goes out of scope here, likely with the read mid-sleep
  }
  EXPECT_TRUE(read_done.load())
      << "destructor returned before the in-flight read retired";
}

TEST(PayloadPool, AcquireReleaseReusesStorageWithinBound) {
  PayloadPool pool(2);
  Payload a(100, 0x11);
  const std::uint8_t* storage = a.data();
  pool.release(std::move(a));
  Payload b = pool.acquire();
  EXPECT_EQ(b.data(), storage) << "pooled storage must be reused";
  EXPECT_TRUE(b.empty()) << "pooled buffers are handed back cleared";
  EXPECT_GE(b.capacity(), 100u);
  // Bound: a third banked buffer is dropped, not hoarded.
  pool.release(Payload(8, 1));
  pool.release(Payload(8, 2));
  pool.release(Payload(8, 3));
  EXPECT_EQ(pool.size(), 2u);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.released, 4u);
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_EQ(stats.reused, 1u);
  // Oversized buffers are freed, never banked at peak capacity.
  Payload huge;
  huge.reserve(PayloadPool::kMaxBankedCapacity + 1);
  huge.push_back(1);
  PayloadPool fresh(4);
  fresh.release(std::move(huge));
  EXPECT_EQ(fresh.size(), 0u);
  EXPECT_EQ(fresh.stats().dropped, 1u);
}

TEST(AsyncBoundary, SharedPoolRecyclesUnitBuffersAcrossSourceAndSink) {
  // source -> relay -> sink with one shared pool: the source retires
  // every unit buffer into the pool, the sink draws its per-unit banked
  // copies from it. After a short warm-up the boundary stops allocating:
  // pool reuse must dominate and the written stream stay exact.
  constexpr std::uint64_t kUnits = 32;
  IoContext io;
  auto pool = std::make_shared<PayloadPool>(16);
  AsyncSource source(
      io, [](std::uint64_t i) { return std::optional<Payload>(unit_payload(i)); },
      /*depth=*/4, pool);
  std::mutex written_mu;
  std::vector<Payload> written;
  AsyncSink sink(
      io,
      [&](std::uint64_t, const Payload& p) {
        std::lock_guard lock(written_mu);
        written.push_back(p);
      },
      /*depth=*/4, pool);

  TaskGraph g("pooled-boundary");
  const TaskId src = g.add_task(task("src", 10));
  const TaskId mid = g.add_task(task("relay", 10));
  const TaskId snk = g.add_task(task("snk", 10));
  ASSERT_TRUE(g.add_edge(src, mid, 32).is_ok());
  ASSERT_TRUE(g.add_edge(mid, snk, 32).is_ok());
  source.bind(g, src);
  g.set_body(mid, [](TaskFiring& f) {
    f.store(0, f.inputs[0]->data(), f.inputs[0]->size());
  });
  sink.bind(g, snk);

  EngineOptions eopts;
  eopts.workers = 2;
  Engine engine(eopts);
  ASSERT_TRUE(engine.start().is_ok());
  auto sid = engine.submit(g, {0, 1, 0}, kUnits);
  ASSERT_TRUE(sid.is_ok());
  auto w1 = engine.task_waker(sid.value(), src);
  auto w2 = engine.task_waker(sid.value(), snk);
  ASSERT_TRUE(w1.is_ok() && w2.is_ok());
  source.attach(kUnits, std::move(w1.value()));
  sink.attach(std::move(w2.value()));
  ASSERT_TRUE(engine.wait().is_ok());
  sink.flush();

  ASSERT_EQ(engine.report(sid.value()).outcome, SessionOutcome::kCompleted);
  std::lock_guard lock(written_mu);
  ASSERT_EQ(written.size(), kUnits);
  for (std::uint64_t i = 0; i < kUnits; ++i) {
    EXPECT_EQ(written[i], unit_payload(i)) << "unit " << i;
  }
  const auto stats = pool.get()->stats();
  EXPECT_EQ(stats.released, 2 * kUnits)  // source retires + sink returns
      << "every unit must pass through the pool on both ends";
  // The sink's kUnits banked copies are the only acquires; once the
  // source seeds the pool they must be served from it.
  EXPECT_EQ(stats.acquired, kUnits);
  EXPECT_GT(stats.reused, kUnits / 2)
      << "steady state must reuse, not allocate";
}

TEST(RtpIngress, TailGapFlushesReceivedPacketsInsteadOfDroppingThem) {
  // Units 0..5; packet 3 lost; 4 and 5 arrive, then the feed ends. With
  // playout_delay 3 the gap never ages, so without the flush path units
  // 4 and 5 would be replaced by stale repeats of unit 2.
  net::RtpSender sender;
  std::vector<std::vector<std::uint8_t>> packets;
  for (std::uint64_t i = 0; i < 6; ++i) {
    packets.push_back(sender.packetize(unit_payload(i, 16),
                                       static_cast<std::uint32_t>(i) * 100));
  }
  packets.erase(packets.begin() + 3);
  RtpIngress ingress(make_timed_feed(std::move(packets), 1000.0),
                     RtpIngressOptions{.playout_delay_units = 3});
  std::vector<Payload> played;
  for (std::uint64_t i = 0; i < 6; ++i) {
    auto unit = ingress.read(i);
    ASSERT_TRUE(unit.has_value());
    played.push_back(std::move(*unit));
  }
  EXPECT_EQ(played[2], unit_payload(2, 16));
  EXPECT_EQ(played[3], unit_payload(2, 16)) << "lost unit concealed as repeat";
  EXPECT_EQ(played[4], unit_payload(4, 16)) << "tail packet must still play";
  EXPECT_EQ(played[5], unit_payload(5, 16)) << "tail packet must still play";
  EXPECT_EQ(ingress.concealed(), 1u);
}

TEST(TaskWaker, LifecycleErrorsAndSpuriousCallsAreSafe) {
  auto pipe = make_synthetic_chain(2, 100.0);
  EngineOptions eopts;
  eopts.workers = 1;
  Engine engine(eopts);
  // Pre-start sessions are not wired yet: no waker to hand out.
  auto sid = engine.add_session(pipe.graph, {0, 0}, 4);
  ASSERT_TRUE(sid.is_ok());
  EXPECT_FALSE(engine.task_waker(sid.value(), 0).is_ok());
  ASSERT_TRUE(engine.start().is_ok());
  EXPECT_FALSE(engine.task_waker(99, 0).is_ok());
  EXPECT_FALSE(engine.task_waker(sid.value(), 99).is_ok());
  auto waker = engine.task_waker(sid.value(), 0);
  ASSERT_TRUE(waker.is_ok());
  waker.value()();  // spurious wake while running: harmless
  ASSERT_TRUE(engine.wait().is_ok());
  waker.value()();  // after drain: harmless
}

// ---------------------------------------------------------------------------
// Streaming session (RTP in -> decode -> RTP out)
// ---------------------------------------------------------------------------

StreamingSessionConfig small_stream(std::uint64_t frames) {
  StreamingSessionConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  cfg.frames = frames;
  cfg.seed = 7;
  return cfg;
}

struct StreamRun {
  std::uint32_t luma_crc = 0;
  std::uint64_t concealed = 0;
  std::uint64_t packets_out = 0;
  SessionOutcome outcome = SessionOutcome::kPending;
  double io_stall_s = 0.0;
};

StreamRun run_stream(const StreamingSessionConfig& cfg, std::size_t workers) {
  IoContext io;
  StreamingSession session = make_streaming_session(io, cfg);
  EngineOptions eopts;
  eopts.workers = workers;
  Engine engine(eopts);
  EXPECT_TRUE(engine.start().is_ok());
  auto sid = session.submit_to(
      engine, round_robin_mapping(session.graph, workers));
  EXPECT_TRUE(sid.is_ok()) << sid.status().to_text();
  EXPECT_TRUE(engine.wait().is_ok());
  session.finish();
  StreamRun r;
  r.outcome = engine.report(sid.value()).outcome;
  r.io_stall_s = engine.report(sid.value()).io_stall_s;
  r.luma_crc = session.state->luma_crc;
  r.concealed = session.ingress->concealed();
  r.packets_out = session.egress->packets_sent();
  EXPECT_EQ(session.state->frames_decoded, cfg.frames);
  return r;
}

TEST(StreamingSession, CleanStreamBitIdenticalAcrossWorkerCounts) {
  const auto cfg = small_stream(16);
  const StreamRun one = run_stream(cfg, 1);
  const StreamRun four = run_stream(cfg, 4);
  ASSERT_EQ(one.outcome, SessionOutcome::kCompleted);
  ASSERT_EQ(four.outcome, SessionOutcome::kCompleted);
  EXPECT_EQ(one.concealed, 0u);
  EXPECT_EQ(one.luma_crc, four.luma_crc)
      << "streamed decode must not depend on worker count";
  EXPECT_EQ(one.packets_out, cfg.frames);
  EXPECT_EQ(four.packets_out, cfg.frames);
}

TEST(StreamingSession, LossAndReorderConcealedDeterministically) {
  auto cfg = small_stream(30);
  cfg.loss_probability = 0.15;
  cfg.reorder_span = 2;
  cfg.playout_delay_units = 3;
  const StreamRun a = run_stream(cfg, 2);
  const StreamRun b = run_stream(cfg, 3);
  ASSERT_EQ(a.outcome, SessionOutcome::kCompleted);
  ASSERT_EQ(b.outcome, SessionOutcome::kCompleted);
  // The drop policy delivers exactly `frames` units: losses become
  // concealed repeats, never missing iterations.
  EXPECT_GT(a.concealed, 0u) << "15% loss must conceal something";
  EXPECT_EQ(a.packets_out, cfg.frames);
  // Same seed, same shaped feed -> bit-identical displayed sequence,
  // regardless of worker count.
  EXPECT_EQ(a.luma_crc, b.luma_crc);
  EXPECT_EQ(a.concealed, b.concealed);
  // And the lossy sequence must differ from the clean one.
  StreamingSessionConfig clean = small_stream(30);
  EXPECT_NE(a.luma_crc, run_stream(clean, 2).luma_crc);
}

// ---------------------------------------------------------------------------
// File transcode session (block read -> decode -> encode -> block write)
// ---------------------------------------------------------------------------

TranscodeSessionConfig small_transcode(std::uint64_t frames) {
  TranscodeSessionConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  cfg.frames = frames;
  cfg.seed = 11;
  return cfg;
}

TEST(TranscodeSession, AsyncMatchesInlineBitstreamExactly) {
  auto run_one = [](bool async) {
    auto cfg = small_transcode(10);
    cfg.async_boundaries = async;
    IoContext io;
    auto made = make_file_transcode_session(io, cfg);
    EXPECT_TRUE(made.is_ok()) << made.status().to_text();
    FileTranscodeSession session = std::move(made.value());
    EngineOptions eopts;
  eopts.workers = 2;
  Engine engine(eopts);
    EXPECT_TRUE(engine.start().is_ok());
    auto sid = session.submit_to(engine,
                                 round_robin_mapping(session.graph, 2));
    EXPECT_TRUE(sid.is_ok()) << sid.status().to_text();
    EXPECT_TRUE(engine.wait().is_ok());
    session.finish();
    EXPECT_EQ(engine.report(sid.value()).outcome, SessionOutcome::kCompleted);
    EXPECT_TRUE(session.writer_endpoint->status().is_ok());
    // The re-encoded stream really landed on the FAT volume.
    auto out = session.volume->read_file(session.out_path);
    EXPECT_TRUE(out.is_ok());
    EXPECT_EQ(out.value().size(), session.state->bytes_out);
    return std::pair(session.state->out_crc, session.state->bytes_out);
  };
  const auto async = run_one(true);
  const auto inline_ = run_one(false);
  EXPECT_GT(async.second, 0u);
  EXPECT_EQ(async.first, inline_.first)
      << "async boundaries must not change the transcoded bitstream";
  EXPECT_EQ(async.second, inline_.second);
}

TEST(TranscodeSession, SlowDeviceShowsUpAsIoStallNotCompute) {
  auto cfg = small_transcode(8);
  cfg.time_scale = 1.0;  // charge the modeled seek/transfer time for real
  IoContext io;
  auto made = make_file_transcode_session(io, cfg);
  ASSERT_TRUE(made.is_ok());
  FileTranscodeSession session = std::move(made.value());
  EngineOptions eopts;
  eopts.workers = 2;
  Engine engine(eopts);
  ASSERT_TRUE(engine.start().is_ok());
  auto sid = session.submit_to(engine, round_robin_mapping(session.graph, 2));
  ASSERT_TRUE(sid.is_ok());
  ASSERT_TRUE(engine.wait().is_ok());
  session.finish();
  const auto& rep = engine.report(sid.value());
  ASSERT_EQ(rep.outcome, SessionOutcome::kCompleted);
  EXPECT_GT(session.reader_endpoint->modeled_io_us(), 0.0);
  EXPECT_GT(session.writer_endpoint->modeled_io_us(), 0.0);
  // The read boundary waits on the disk; that time must be in io_stall.
  EXPECT_GT(rep.io_stall_s, 0.0);
  EXPECT_GT(rep.tasks[session.read_task].io_stalls, 0u);
}

// ---------------------------------------------------------------------------
// TSan stress: shared IoContext, many sessions, cancel + dynamic submit
// ---------------------------------------------------------------------------

TEST(IoStress, SharedContextManySessionsWithCancelAndDynamicSubmit) {
  IoContext io(IoContextOptions{.threads = 2});
  EngineOptions eopts;
  eopts.workers = 3;
  Engine engine(eopts);
  ASSERT_TRUE(engine.start().is_ok());

  constexpr std::size_t kInitial = 4;
  std::vector<FileTranscodeSession> sessions;
  sessions.reserve(kInitial + 2);
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < kInitial; ++i) {
    auto cfg = small_transcode(8);
    cfg.seed = 100 + i;
    cfg.io_depth = 2;
    auto made = make_file_transcode_session(io, cfg);
    ASSERT_TRUE(made.is_ok());
    sessions.push_back(std::move(made.value()));
  }
  for (auto& session : sessions) {
    auto sid = session.submit_to(engine, round_robin_mapping(session.graph, 3));
    ASSERT_TRUE(sid.is_ok());
    ids.push_back(sid.value());
  }
  // Concurrently: cancel two sessions mid-flight and admit two more.
  std::thread chaos([&] {
    engine.cancel(ids[1]);
    for (std::size_t i = 0; i < 2; ++i) {
      auto cfg = small_transcode(6);
      cfg.seed = 200 + i;
      auto made = make_file_transcode_session(io, cfg);
      ASSERT_TRUE(made.is_ok());
      sessions.push_back(std::move(made.value()));
      auto sid = sessions.back().submit_to(
          engine, round_robin_mapping(sessions.back().graph, 3));
      ASSERT_TRUE(sid.is_ok());
      ids.push_back(sid.value());
    }
    engine.cancel(ids[2]);
  });
  chaos.join();
  ASSERT_TRUE(engine.wait().is_ok());
  for (auto& session : sessions) session.finish();
  io.stop();

  std::size_t completed = 0;
  for (const std::size_t id : ids) {
    const auto& rep = engine.report(id);
    EXPECT_TRUE(rep.outcome == SessionOutcome::kCompleted ||
                rep.outcome == SessionOutcome::kCancelled)
        << to_string(rep.outcome);
    if (rep.outcome == SessionOutcome::kCompleted) ++completed;
  }
  EXPECT_GE(completed, ids.size() - 2);
}

}  // namespace
