// Tests for the MPSoC substrate: task graphs, platform model, list
// scheduling with contention, energy accounting, mapping algorithms.
#include <gtest/gtest.h>

#include <algorithm>

#include "mpsoc/mapping.h"
#include "mpsoc/platform.h"
#include "mpsoc/schedule.h"
#include "mpsoc/taskgraph.h"

namespace mmsoc::mpsoc {
namespace {

Task simple_task(const char* name, double ops) {
  Task t;
  t.name = name;
  t.work_ops = ops;
  return t;
}

Platform two_risc_platform() {
  Platform p;
  p.name = "2xRISC";
  ProcessingElement pe;
  pe.name = "risc0";
  pe.clock_hz = 100e6;
  pe.ops_per_cycle = 1.0;
  pe.active_power_w = 0.1;
  pe.idle_power_w = 0.01;
  p.pes = {pe, pe};
  p.pes[1].name = "risc1";
  p.interconnect.bandwidth_bytes_per_s = 100e6;
  p.interconnect.latency_s = 0.0;
  p.interconnect.energy_per_byte_j = 0.0;
  return p;
}

// A fork-join diamond: a -> {b, c} -> d.
TaskGraph diamond(double work = 1e6, double bytes = 0.0) {
  TaskGraph g("diamond");
  const auto a = g.add_task(simple_task("a", work));
  const auto b = g.add_task(simple_task("b", work));
  const auto c = g.add_task(simple_task("c", work));
  const auto d = g.add_task(simple_task("d", work));
  (void)g.add_edge(a, b, bytes);
  (void)g.add_edge(a, c, bytes);
  (void)g.add_edge(b, d, bytes);
  (void)g.add_edge(c, d, bytes);
  return g;
}

// ---------------------------------------------------------------- taskgraph

TEST(TaskGraph, TopologicalOrderRespectsEdges) {
  const auto g = diamond();
  const auto order = g.topological_order();
  ASSERT_TRUE(order.is_ok());
  const auto& topo = order.value();
  const auto pos = [&](TaskId t) {
    return std::find(topo.begin(), topo.end(), t) - topo.begin();
  };
  for (const auto& e : g.edges()) {
    EXPECT_LT(pos(e.src), pos(e.dst));
  }
}

TEST(TaskGraph, CycleDetected) {
  TaskGraph g("cyclic");
  const auto a = g.add_task(simple_task("a", 1));
  const auto b = g.add_task(simple_task("b", 1));
  (void)g.add_edge(a, b, 0);
  (void)g.add_edge(b, a, 0);
  EXPECT_FALSE(g.topological_order().is_ok());
  EXPECT_FALSE(g.is_acyclic());
}

TEST(TaskGraph, EdgeValidation) {
  TaskGraph g("g");
  const auto a = g.add_task(simple_task("a", 1));
  EXPECT_FALSE(g.add_edge(a, a, 0).is_ok());
  EXPECT_FALSE(g.add_edge(a, 99, 0).is_ok());
}

TEST(TaskGraph, Totals) {
  const auto g = diamond(2.0, 10.0);
  EXPECT_DOUBLE_EQ(g.total_work(), 8.0);
  EXPECT_DOUBLE_EQ(g.total_traffic(), 40.0);
}

TEST(TaskGraph, PredecessorsAndSuccessors) {
  const auto g = diamond();
  EXPECT_EQ(g.predecessors(3).size(), 2u);
  EXPECT_EQ(g.successors(0).size(), 2u);
  EXPECT_TRUE(g.predecessors(0).empty());
  EXPECT_TRUE(g.successors(3).empty());
}

// ----------------------------------------------------------------- platform

TEST(Platform, ExecTimeScalesWithClockAndAffinity) {
  ProcessingElement slow;
  slow.clock_hz = 100e6;
  ProcessingElement fast = slow;
  fast.clock_hz = 200e6;
  Task t = simple_task("t", 1e6);
  EXPECT_DOUBLE_EQ(slow.exec_seconds(t), 0.01);
  EXPECT_DOUBLE_EQ(fast.exec_seconds(t), 0.005);

  ProcessingElement dsp;
  dsp.kind = PeKind::kDsp;
  dsp.clock_hz = 100e6;
  t.affinity[PeKind::kDsp] = 4.0;
  EXPECT_DOUBLE_EQ(dsp.exec_seconds(t), 0.0025);
}

TEST(Platform, AcceleratorOnlyRunsItsTag) {
  ProcessingElement accel;
  accel.kind = PeKind::kAccelerator;
  accel.accel_tag = "dct";
  accel.clock_hz = 100e6;

  Task dct_task = simple_task("dct", 1e6);
  dct_task.accel_tag = "dct";
  dct_task.affinity[PeKind::kAccelerator] = 10.0;
  EXPECT_GT(accel.exec_seconds(dct_task), 0.0);

  Task vlc_task = simple_task("vlc", 1e6);
  EXPECT_LT(accel.exec_seconds(vlc_task), 0.0);  // cannot run

  Task me_task = simple_task("me", 1e6);
  me_task.accel_tag = "me";
  me_task.affinity[PeKind::kAccelerator] = 10.0;
  EXPECT_LT(accel.exec_seconds(me_task), 0.0);  // wrong engine
}

TEST(Platform, DspFallsBackToRiscAffinity) {
  ProcessingElement dsp;
  dsp.kind = PeKind::kDsp;
  dsp.clock_hz = 100e6;
  Task t = simple_task("control", 1e6);  // RISC affinity only
  EXPECT_DOUBLE_EQ(dsp.exec_seconds(t), 0.01);
}

TEST(Platform, CanRunDetectsImpossibleGraphs) {
  Platform p = two_risc_platform();
  TaskGraph g("g");
  Task t = simple_task("needs-accel", 1.0);
  t.accel_tag = "dct";
  t.affinity.clear();
  t.affinity[PeKind::kAccelerator] = 10.0;
  g.add_task(t);
  EXPECT_FALSE(p.can_run(g));
}

// ----------------------------------------------------------------- schedule

TEST(Schedule, SerialChainOnOnePe) {
  TaskGraph g("chain");
  const auto a = g.add_task(simple_task("a", 1e6));  // 10 ms at 100 MHz
  const auto b = g.add_task(simple_task("b", 1e6));
  (void)g.add_edge(a, b, 0.0);
  const auto p = two_risc_platform();
  const auto s = list_schedule(g, p, {0, 0});
  ASSERT_TRUE(s.feasible);
  EXPECT_NEAR(s.makespan_s, 0.02, 1e-9);
  EXPECT_NEAR(s.intervals[1].start_s, 0.01, 1e-9);
}

TEST(Schedule, ParallelBranchesOverlapOnTwoPes) {
  const auto g = diamond(1e6);  // each task 10 ms
  const auto p = two_risc_platform();
  // a,b,d on PE0; c on PE1: b and c overlap.
  const auto s = list_schedule(g, p, {0, 0, 1, 0});
  ASSERT_TRUE(s.feasible);
  EXPECT_NEAR(s.makespan_s, 0.03, 1e-9);
  // All on one PE: fully serial.
  const auto serial = list_schedule(g, p, {0, 0, 0, 0});
  EXPECT_NEAR(serial.makespan_s, 0.04, 1e-9);
}

TEST(Schedule, CommunicationCostOnlyAcrossPes) {
  TaskGraph g("pair");
  const auto a = g.add_task(simple_task("a", 1e6));
  const auto b = g.add_task(simple_task("b", 1e6));
  (void)g.add_edge(a, b, 1e6);  // 10 ms on the 100 MB/s bus
  const auto p = two_risc_platform();
  const auto same = list_schedule(g, p, {0, 0});
  const auto cross = list_schedule(g, p, {0, 1});
  ASSERT_TRUE(same.feasible);
  ASSERT_TRUE(cross.feasible);
  EXPECT_NEAR(same.makespan_s, 0.02, 1e-9);     // no transfer
  EXPECT_NEAR(cross.makespan_s, 0.03, 1e-9);    // 10 ms transfer inserted
  EXPECT_NEAR(cross.interconnect_busy_s, 0.01, 1e-9);
}

TEST(Schedule, SharedBusSerializesTransfers) {
  // Two independent producer->consumer pairs crossing PEs at once: on a
  // single shared bus the second transfer waits.
  TaskGraph g("two-pairs");
  const auto a1 = g.add_task(simple_task("a1", 1e6));
  const auto b1 = g.add_task(simple_task("b1", 1e6));
  const auto a2 = g.add_task(simple_task("a2", 1e6));
  const auto b2 = g.add_task(simple_task("b2", 1e6));
  (void)g.add_edge(a1, b1, 1e6);
  (void)g.add_edge(a2, b2, 1e6);
  auto p = two_risc_platform();
  const auto bus = list_schedule(g, p, {0, 1, 0, 1});
  ASSERT_TRUE(bus.feasible);
  // a1,a2 serial on PE0 (0-10, 10-20 ms); transfers at 10-20 and 20-30;
  // b1 at 20-30, b2 at 30-40.
  EXPECT_NEAR(bus.makespan_s, 0.04, 1e-9);

  p.interconnect.kind = InterconnectKind::kMesh;
  p.interconnect.mesh_links = 4;
  const auto mesh = list_schedule(g, p, {0, 1, 0, 1});
  // Same link for both (same src/dst pair) -> same result here; but the
  // busiest-link metric must not exceed the bus case.
  EXPECT_LE(mesh.interconnect_busy_s, bus.interconnect_busy_s + 1e-12);
}

TEST(Schedule, EnergyAccountsActiveIdleAndBus) {
  TaskGraph g("one");
  g.add_task(simple_task("a", 1e6));  // 10 ms on PE0
  const auto p = two_risc_platform();
  const auto s = list_schedule(g, p, {0});
  ASSERT_TRUE(s.feasible);
  // PE0 active 10 ms at 0.1 W + PE1 idle 10 ms at 0.01 W.
  EXPECT_NEAR(s.energy_j, 0.01 * 0.1 + 0.01 * 0.01, 1e-9);
}

TEST(Schedule, ThroughputBoundedByBusiestResource) {
  const auto g = diamond(1e6);
  const auto p = two_risc_platform();
  const auto s = list_schedule(g, p, {0, 0, 1, 0});
  ASSERT_TRUE(s.feasible);
  // PE0 busy 30 ms, PE1 busy 10 ms -> II = 30 ms.
  EXPECT_NEAR(s.initiation_interval_s(), 0.03, 1e-9);
  EXPECT_NEAR(s.throughput_per_s(), 1.0 / 0.03, 1e-6);
}

TEST(Schedule, InfeasibleMappingReported) {
  const auto g = diamond();
  const auto p = two_risc_platform();
  EXPECT_FALSE(list_schedule(g, p, {0, 0, 9, 0}).feasible);  // bad PE index
  EXPECT_FALSE(list_schedule(g, p, {0, 0}).feasible);        // wrong size
}

// ------------------------------------------------------------------ mapping

Platform hetero_platform() {
  Platform p;
  p.name = "hetero";
  ProcessingElement risc;
  risc.name = "risc";
  risc.kind = PeKind::kRisc;
  risc.clock_hz = 100e6;
  risc.active_power_w = 0.2;
  ProcessingElement dsp;
  dsp.name = "dsp";
  dsp.kind = PeKind::kDsp;
  dsp.clock_hz = 100e6;
  dsp.ops_per_cycle = 2.0;
  dsp.active_power_w = 0.15;
  ProcessingElement accel;
  accel.name = "dct-engine";
  accel.kind = PeKind::kAccelerator;
  accel.accel_tag = "dct";
  accel.clock_hz = 100e6;
  accel.ops_per_cycle = 4.0;
  accel.active_power_w = 0.1;
  p.pes = {risc, dsp, accel};
  p.interconnect.bandwidth_bytes_per_s = 1e9;
  return p;
}

TaskGraph pipeline_graph() {
  TaskGraph g("pipeline");
  Task dct = simple_task("dct", 4e6);
  dct.accel_tag = "dct";
  dct.affinity[PeKind::kDsp] = 4.0;
  dct.affinity[PeKind::kAccelerator] = 16.0;
  Task filt = simple_task("filter", 2e6);
  filt.affinity[PeKind::kDsp] = 4.0;
  Task vlc = simple_task("vlc", 1e6);
  const auto a = g.add_task(filt);
  const auto b = g.add_task(dct);
  const auto c = g.add_task(vlc);
  (void)g.add_edge(a, b, 1e4);
  (void)g.add_edge(b, c, 1e4);
  return g;
}

TEST(Mapping, AllMappersProduceFeasibleSchedules) {
  const auto g = pipeline_graph();
  const auto p = hetero_platform();
  for (const auto kind : {MapperKind::kRoundRobin, MapperKind::kGreedyLoadBalance,
                          MapperKind::kHeft, MapperKind::kSimulatedAnnealing}) {
    const auto r = map_graph(g, p, kind);
    EXPECT_TRUE(r.schedule.feasible) << to_string(kind);
    EXPECT_EQ(r.mapping.size(), g.task_count());
  }
}

TEST(Mapping, HeftUsesAcceleratorForDct) {
  const auto g = pipeline_graph();
  const auto p = hetero_platform();
  const auto r = map_graph(g, p, MapperKind::kHeft);
  ASSERT_TRUE(r.schedule.feasible);
  EXPECT_EQ(r.mapping[1], 2u);  // dct task on the dct engine
}

TEST(Mapping, HeftBeatsRoundRobin) {
  const auto g = pipeline_graph();
  const auto p = hetero_platform();
  const auto rr = map_graph(g, p, MapperKind::kRoundRobin);
  const auto heft = map_graph(g, p, MapperKind::kHeft);
  ASSERT_TRUE(rr.schedule.feasible);
  ASSERT_TRUE(heft.schedule.feasible);
  EXPECT_LE(heft.schedule.makespan_s, rr.schedule.makespan_s * 1.001);
}

TEST(Mapping, AnnealingNeverWorseThanGreedySeed) {
  const auto g = pipeline_graph();
  const auto p = hetero_platform();
  const auto greedy = map_graph(g, p, MapperKind::kGreedyLoadBalance);
  AnnealingParams params;
  params.iterations = 500;
  params.seed = 3;
  const auto sa = map_graph(g, p, MapperKind::kSimulatedAnnealing, params);
  ASSERT_TRUE(sa.schedule.feasible);
  EXPECT_LE(sa.schedule.makespan_s, greedy.schedule.makespan_s + 1e-12);
}

TEST(Mapping, AnnealingDeterministicForSeed) {
  const auto g = pipeline_graph();
  const auto p = hetero_platform();
  AnnealingParams params;
  params.iterations = 300;
  params.seed = 7;
  const auto a = map_graph(g, p, MapperKind::kSimulatedAnnealing, params);
  const auto b = map_graph(g, p, MapperKind::kSimulatedAnnealing, params);
  EXPECT_EQ(a.mapping, b.mapping);
}

TEST(Mapping, EnergyWeightedAnnealingTradesSpeedForEnergy) {
  const auto g = pipeline_graph();
  const auto p = hetero_platform();
  AnnealingParams fast;
  fast.iterations = 1500;
  fast.seed = 11;
  AnnealingParams frugal = fast;
  frugal.energy_weight = 1000.0;  // heavily punish joules
  const auto speed = map_graph(g, p, MapperKind::kSimulatedAnnealing, fast);
  const auto energy = map_graph(g, p, MapperKind::kSimulatedAnnealing, frugal);
  ASSERT_TRUE(speed.schedule.feasible);
  ASSERT_TRUE(energy.schedule.feasible);
  EXPECT_LE(energy.schedule.energy_j, speed.schedule.energy_j * 1.001);
}

TEST(Mapping, UpwardRanksDecreaseAlongEdges) {
  const auto g = pipeline_graph();
  const auto p = hetero_platform();
  const auto ranks = upward_ranks(g, p);
  for (const auto& e : g.edges()) {
    EXPECT_GT(ranks[e.src], ranks[e.dst]);
  }
}

}  // namespace
}  // namespace mmsoc::mpsoc
