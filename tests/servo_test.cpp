// Tests for the DVD servo subsystem (§7): plant physics, PID loop
// stability and performance, per-mechanism adaptation.
#include <gtest/gtest.h>

#include <cmath>

#include "servo/autotune.h"
#include "servo/controller.h"
#include "servo/plant.h"

namespace mmsoc::servo {
namespace {

PlantParams nominal() { return PlantParams{}; }

// -------------------------------------------------------------------- plant

TEST(Plant, SettlesToStaticGain) {
  Plant plant(nominal());
  for (int i = 0; i < 100000; ++i) plant.step(0.001);
  // Static deflection = gain * u / k.
  const double expected = nominal().actuator_gain * 0.001 / nominal().stiffness;
  EXPECT_NEAR(plant.position(), expected, expected * 0.02);
}

TEST(Plant, ZeroInputStaysAtRest) {
  Plant plant(nominal());
  for (int i = 0; i < 1000; ++i) plant.step(0.0);
  EXPECT_DOUBLE_EQ(plant.position(), 0.0);
}

TEST(Plant, OscillatesNearResonance) {
  // Underdamped second-order system: impulse response rings at
  // f = sqrt(k/m)/2pi ~ 8 Hz for the nominal parameters.
  Plant plant(nominal());
  plant.step(1.0);  // impulse-ish kick
  int sign_changes = 0;
  double prev = plant.position();
  const double fs = nominal().sample_rate_hz;
  const auto steps = static_cast<int>(fs);  // 1 second
  for (int i = 0; i < steps; ++i) {
    plant.step(0.0);
    if ((plant.position() >= 0) != (prev >= 0)) ++sign_changes;
    prev = plant.position();
  }
  const double est_hz = sign_changes / 2.0;  // two crossings per cycle
  const double expected_hz =
      std::sqrt(nominal().stiffness / nominal().mass) / (2.0 * 3.14159265);
  EXPECT_NEAR(est_hz, expected_hz, 1.5);
}

TEST(Plant, ScatteredParamsDeterministicAndBounded) {
  const auto a = scattered_params(nominal(), 0.2, 5);
  const auto b = scattered_params(nominal(), 0.2, 5);
  EXPECT_DOUBLE_EQ(a.stiffness, b.stiffness);
  const auto c = scattered_params(nominal(), 0.2, 6);
  EXPECT_NE(a.stiffness, c.stiffness);
  EXPECT_GE(a.stiffness, nominal().stiffness * 0.8);
  EXPECT_LE(a.stiffness, nominal().stiffness * 1.2);
}

TEST(Disturbance, SinusoidPlusNoise) {
  EccentricityDisturbance d(1.0, 30.0, 0.0, 44100.0, 1);
  double peak = 0.0;
  for (int i = 0; i < 44100; ++i) peak = std::max(peak, std::abs(d.next()));
  EXPECT_NEAR(peak, 1.0, 0.01);
}

// ----------------------------------------------------------------- PID loop

TEST(Pid, StepResponseSettlesWithoutExcessiveOvershoot) {
  Plant plant(nominal());
  PidController pid(PidGains{}, nominal().sample_rate_hz);
  const auto m = run_step_response(plant, pid, 1.0, 2.0);
  ASSERT_TRUE(m.stable);
  EXPECT_LT(m.overshoot_fraction, 0.35);
  EXPECT_LT(m.settling_time_s, 1.0);
}

TEST(Pid, IntegralActionRemovesSteadyStateError) {
  Plant plant(nominal());
  PidController pid(PidGains{}, nominal().sample_rate_hz);
  double position = 0.0;
  for (int i = 0; i < 80000; ++i) {
    const double u = pid.update(1.0 - plant.position());
    position = plant.step(u);
  }
  EXPECT_NEAR(position, 1.0, 0.01);
}

TEST(Pid, ProportionalOnlyLeavesSteadyStateError) {
  Plant plant(nominal());
  PidGains p_only;
  p_only.ki = 0.0;
  p_only.kd = 0.0;
  PidController pid(p_only, nominal().sample_rate_hz);
  double position = 0.0;
  for (int i = 0; i < 80000; ++i) {
    position = plant.step(pid.update(1.0 - plant.position()));
  }
  // DC droop = 1/(1 + kp*G0): small at kp=40 but strictly nonzero,
  // unlike the integral-action loop which converges to within 1%.
  EXPECT_LT(position, 0.995);
  EXPECT_GT(position, 0.9);
}

TEST(Pid, TracksUnderEccentricity) {
  Plant plant(nominal());
  PidController pid(PidGains{}, nominal().sample_rate_hz);
  EccentricityDisturbance dist(5.0, 25.0, 0.5, nominal().sample_rate_hz, 2);
  const auto m = run_tracking(plant, pid, dist, 1.0);
  ASSERT_TRUE(m.stable);
  // Closed loop must beat the open-loop deflection (5/k = 0.002) clearly.
  EXPECT_LT(m.rms_tracking_error, 0.002);
  EXPECT_GT(m.rms_tracking_error, 0.0);
}

TEST(Pid, InstabilityDetectedForAbsurdGains) {
  // A pure mega-integrator: double pole at the origin with -270 degrees
  // of phase at crossover cannot be stabilized.
  Plant plant(nominal());
  PidGains crazy;
  crazy.kp = 0.0;
  crazy.ki = 1e7;
  crazy.kd = 0.0;
  PidController pid(crazy, nominal().sample_rate_hz);
  const auto m = run_step_response(plant, pid, 1.0, 1.0);
  EXPECT_FALSE(m.stable);
}

// ----------------------------------------------------------------- autotune

TEST(Autotune, IdentifiesDcGain) {
  Plant plant(nominal());
  const auto id = identify_plant(plant);
  const double expected = nominal().actuator_gain / nominal().stiffness;
  EXPECT_NEAR(id.dc_gain, expected, expected * 0.05);
}

TEST(Autotune, IdentifiesResonance) {
  Plant plant(nominal());
  const auto id = identify_plant(plant);
  const double expected_hz =
      std::sqrt(nominal().stiffness / nominal().mass) / (2.0 * 3.14159265);
  EXPECT_NEAR(id.resonance_hz, expected_hz, 2.0);
}

TEST(Autotune, AdaptationImprovesWorstCaseAcrossProductionRun) {
  // §7's claim, as an experiment: across a production run of scattered
  // mechanisms, gains adapted per unit track at least as well in the
  // worst case as one-size-fits-all nominal gains.
  const auto reference = nominal_identification(nominal());
  const PidGains nominal_gains{};
  double worst_nominal = 0.0, worst_adapted = 0.0;
  int nominal_unstable = 0, adapted_unstable = 0;
  for (std::uint64_t unit = 1; unit <= 12; ++unit) {
    const auto params = scattered_params(nominal(), 0.35, unit);

    Plant p1(params);
    PidController c1(nominal_gains, params.sample_rate_hz);
    EccentricityDisturbance d1(5.0, 25.0, 0.5, params.sample_rate_hz, unit);
    const auto m1 = run_tracking(p1, c1, d1, 0.6);

    Plant probe(params);
    const auto id = identify_plant(probe);
    const auto adapted = adapt_gains(nominal_gains, id, reference);
    Plant p2(params);
    PidController c2(adapted, params.sample_rate_hz);
    EccentricityDisturbance d2(5.0, 25.0, 0.5, params.sample_rate_hz, unit);
    const auto m2 = run_tracking(p2, c2, d2, 0.6);

    if (!m1.stable) ++nominal_unstable; else worst_nominal = std::max(worst_nominal, m1.rms_tracking_error);
    if (!m2.stable) ++adapted_unstable; else worst_adapted = std::max(worst_adapted, m2.rms_tracking_error);
  }
  EXPECT_EQ(adapted_unstable, 0);
  EXPECT_LE(worst_adapted, worst_nominal * 1.05 + (nominal_unstable > 0 ? 1e9 : 0.0));
}

TEST(Autotune, AdaptScalesInverselyWithGain) {
  const auto reference = nominal_identification(nominal());
  Identification strong = reference;
  strong.dc_gain = reference.dc_gain * 2.0;  // hotter actuator
  const auto adapted = adapt_gains(PidGains{}, strong, reference);
  EXPECT_NEAR(adapted.kp, PidGains{}.kp * 0.5, 1e-9);
}

}  // namespace
}  // namespace mmsoc::servo
