// Property-based suites cutting across modules: parameterized sweeps over
// configuration spaces, checking invariants rather than point values.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "dsp/wavelet.h"
#include "entropy/huffman.h"
#include "mpsoc/mapping.h"
#include "runtime/queue.h"
#include "runtime/telemetry.h"
#include "video/codec.h"
#include "video/metrics.h"
#include "video/source.h"

namespace mmsoc {
namespace {

// --------------------------------------------- rate-distortion monotonicity

class QscaleSweep : public ::testing::TestWithParam<int> {};

TEST_P(QscaleSweep, RoundTripQualityAndSizeWellOrdered) {
  // Property: for any qscale, the codec round-trips losslessly enough to
  // decode, and quality/size are sane. Cross-qscale monotonicity is
  // checked in the _Monotone test below.
  const int q = GetParam();
  video::EncoderConfig cfg;
  cfg.width = 64;
  cfg.height = 64;
  cfg.gop_size = 3;
  cfg.qscale = q;
  video::VideoEncoder enc(cfg);
  video::VideoDecoder dec;
  const auto scene = video::scene_high_detail(31);
  for (int i = 0; i < 3; ++i) {
    const auto frame = video::SyntheticVideo::render(64, 64, scene, i);
    const auto e = enc.encode(frame);
    auto d = dec.decode(e.bytes);
    ASSERT_TRUE(d.is_ok()) << "qscale " << q;
    EXPECT_EQ(d.value(), enc.reconstructed());
    EXPECT_GT(video::psnr_luma(frame, d.value()), 18.0) << "qscale " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(AllScales, QscaleSweep,
                         ::testing::Values(1, 2, 4, 8, 12, 16, 24, 31));

TEST(RateDistortion, MonotoneAcrossQscale) {
  const auto scene = video::scene_high_detail(32);
  std::vector<video::Frame> frames;
  for (int i = 0; i < 3; ++i)
    frames.push_back(video::SyntheticVideo::render(64, 64, scene, i));

  double prev_bits = 1e18;
  double prev_psnr = 1e18;
  for (const int q : {2, 6, 12, 24}) {
    video::EncoderConfig cfg;
    cfg.width = 64;
    cfg.height = 64;
    cfg.gop_size = 1;
    cfg.qscale = q;
    video::VideoEncoder enc(cfg);
    video::VideoDecoder dec;
    double bits = 0.0, psnr = 0.0;
    for (const auto& f : frames) {
      const auto e = enc.encode(f);
      bits += static_cast<double>(e.bytes.size()) * 8;
      psnr += video::psnr_luma(f, dec.decode(e.bytes).value());
    }
    // Coarser quantization never costs more bits nor gains quality.
    EXPECT_LT(bits, prev_bits) << "q=" << q;
    EXPECT_LT(psnr, prev_psnr + 1e-9) << "q=" << q;
    prev_bits = bits;
    prev_psnr = psnr;
  }
}

// -------------------------------------------------- Huffman across sources

class HuffmanDistribution
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(HuffmanDistribution, RoundTripAndNearEntropy) {
  // Property: for geometric-ish sources of any size/skew, the code round
  // trips and its expected length is within 1 bit of the entropy bound.
  const auto [alphabet, decay] = GetParam();
  std::vector<std::uint64_t> freqs(static_cast<std::size_t>(alphabet));
  double p = 1e9;
  for (auto& f : freqs) {
    f = static_cast<std::uint64_t>(p) + 1;
    p *= decay;
  }
  auto built = entropy::HuffmanCode::from_frequencies(freqs);
  ASSERT_TRUE(built.is_ok());
  const auto& code = built.value();
  const double h = entropy::entropy_bits(freqs);
  const double l = code.expected_length(freqs);
  EXPECT_GE(l, h - 1e-9);
  EXPECT_LE(l, h + 1.0);

  common::Rng rng(static_cast<std::uint64_t>(alphabet) * 131 + 7);
  common::BitWriter w;
  std::vector<std::size_t> symbols;
  for (int i = 0; i < 2000; ++i) {
    const auto s = rng.next_below(freqs.size());
    symbols.push_back(s);
    ASSERT_TRUE(code.encode(s, w));
  }
  const auto bytes = w.take();
  common::BitReader r(bytes);
  for (const auto s : symbols) {
    ASSERT_EQ(code.decode(r), static_cast<int>(s));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sources, HuffmanDistribution,
    ::testing::Combine(::testing::Values(2, 5, 17, 64, 257),
                       ::testing::Values(0.5, 0.8, 0.95, 1.0)));

// ------------------------------------------------------- wavelet 2-D sweep

class Dwt2dSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Dwt2dSweep, IntegerTransformExactlyInvertible) {
  const auto [w, h, levels] = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(w) * 1000 + static_cast<std::uint64_t>(h));
  std::vector<std::int32_t> img(static_cast<std::size_t>(w) * h);
  for (auto& v : img) v = static_cast<std::int32_t>(rng.next_in(-512, 512));
  const auto original = img;
  dsp::dwt53_2d_forward(img, w, h, levels);
  if (levels > 0) {
    EXPECT_NE(img, original);
  }
  dsp::dwt53_2d_inverse(img, w, h, levels);
  EXPECT_EQ(img, original);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Dwt2dSweep,
    ::testing::Values(std::tuple{8, 8, 1}, std::tuple{16, 16, 2},
                      std::tuple{32, 16, 2}, std::tuple{64, 64, 3},
                      std::tuple{128, 32, 2}, std::tuple{16, 64, 4}));

// -------------------------------------------------- schedule invariants

mpsoc::TaskGraph random_dag(std::uint64_t seed, std::size_t tasks) {
  common::Rng rng(seed);
  mpsoc::TaskGraph g("random");
  for (std::size_t t = 0; t < tasks; ++t) {
    mpsoc::Task task;
    task.name = "t" + std::to_string(t);
    task.work_ops = rng.next_double_in(1e4, 1e6);
    if (rng.next_bool(0.5)) {
      task.affinity[mpsoc::PeKind::kDsp] = rng.next_double_in(1.5, 6.0);
    }
    g.add_task(std::move(task));
  }
  // Forward edges only: guaranteed acyclic.
  for (std::size_t t = 1; t < tasks; ++t) {
    const auto preds = 1 + rng.next_below(std::min<std::size_t>(t, 3));
    for (std::size_t k = 0; k < preds; ++k) {
      (void)g.add_edge(rng.next_below(t), t, rng.next_double_in(0, 1e5));
    }
  }
  return g;
}

mpsoc::Platform random_platform(std::uint64_t seed) {
  common::Rng rng(seed);
  mpsoc::Platform p;
  p.name = "random";
  const auto n = 2 + rng.next_below(3);
  for (std::uint64_t i = 0; i < n; ++i) {
    mpsoc::ProcessingElement pe;
    pe.name = "pe" + std::to_string(i);
    pe.kind = rng.next_bool(0.5) ? mpsoc::PeKind::kRisc : mpsoc::PeKind::kDsp;
    pe.clock_hz = rng.next_double_in(50e6, 400e6);
    pe.ops_per_cycle = pe.kind == mpsoc::PeKind::kDsp ? 2.0 : 1.0;
    pe.active_power_w = rng.next_double_in(0.05, 0.5);
    pe.idle_power_w = pe.active_power_w * 0.1;
    p.pes.push_back(pe);
  }
  p.interconnect.bandwidth_bytes_per_s = rng.next_double_in(50e6, 1e9);
  return p;
}

class ScheduleInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleInvariants, HoldForAllMappers) {
  const auto seed = GetParam();
  const auto graph = random_dag(seed, 12);
  const auto platform = random_platform(seed ^ 0xABCD);
  for (const auto kind :
       {mpsoc::MapperKind::kRoundRobin, mpsoc::MapperKind::kGreedyLoadBalance,
        mpsoc::MapperKind::kHeft, mpsoc::MapperKind::kSimulatedAnnealing}) {
    const auto r = mpsoc::map_graph(graph, platform, kind);
    ASSERT_TRUE(r.schedule.feasible) << mpsoc::to_string(kind);

    // Invariant 1: precedence — no task starts before all predecessors end.
    for (const auto& e : graph.edges()) {
      EXPECT_GE(r.schedule.intervals[e.dst].start_s,
                r.schedule.intervals[e.src].finish_s - 1e-12)
          << mpsoc::to_string(kind) << " seed " << seed;
    }
    // Invariant 2: PE exclusivity — intervals on one PE never overlap.
    for (std::size_t p = 0; p < platform.pes.size(); ++p) {
      std::vector<mpsoc::TaskInterval> on_pe;
      for (const auto& iv : r.schedule.intervals) {
        if (iv.pe == p) on_pe.push_back(iv);
      }
      std::sort(on_pe.begin(), on_pe.end(),
                [](const auto& a, const auto& b) { return a.start_s < b.start_s; });
      for (std::size_t i = 1; i < on_pe.size(); ++i) {
        EXPECT_GE(on_pe[i].start_s, on_pe[i - 1].finish_s - 1e-12);
      }
    }
    // Invariant 3: makespan is the max finish time.
    double max_finish = 0.0;
    for (const auto& iv : r.schedule.intervals) {
      max_finish = std::max(max_finish, iv.finish_s);
    }
    EXPECT_NEAR(r.schedule.makespan_s, max_finish, 1e-12);
    // Invariant 4: II <= makespan, energy positive, utilization in (0,1].
    EXPECT_LE(r.schedule.initiation_interval_s(), r.schedule.makespan_s + 1e-12);
    EXPECT_GT(r.schedule.energy_j, 0.0);
    EXPECT_GT(r.schedule.mean_utilization(), 0.0);
    EXPECT_LE(r.schedule.mean_utilization(), 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleInvariants,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// -------------------------------------------------- SpscQueue fuzzing

// Model-based fuzz: drive the ring with a randomized operation sequence
// and mirror every step in a std::deque oracle. Catches FIFO violations,
// capacity-bound violations, and lost/duplicated/phantom tokens.
class SpscModelFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpscModelFuzz, MatchesDequeOracleOver10kOps) {
  common::Rng rng(GetParam());
  const auto capacity = static_cast<std::size_t>(1 + rng.next_below(7));
  runtime::SpscQueue<std::uint64_t> q(capacity);
  std::deque<std::uint64_t> oracle;
  std::uint64_t next_token = 0;

  for (int op = 0; op < 10000; ++op) {
    switch (rng.next_below(5)) {
      case 0:
      case 1: {  // push
        const bool pushed = q.try_push(std::uint64_t{next_token});
        EXPECT_EQ(pushed, oracle.size() < capacity) << "op " << op;
        if (pushed) oracle.push_back(next_token++);
        break;
      }
      case 2: {  // pop
        const auto got = q.try_pop();
        ASSERT_EQ(got.has_value(), !oracle.empty()) << "op " << op;
        if (got) {
          EXPECT_EQ(*got, oracle.front()) << "FIFO violated at op " << op;
          oracle.pop_front();
        }
        break;
      }
      case 3: {  // peek
        auto* f = q.front();
        ASSERT_EQ(f != nullptr, !oracle.empty()) << "op " << op;
        if (f) {
          EXPECT_EQ(*f, oracle.front());
        }
        break;
      }
      case 4: {  // occasional bulk drain (the cancellation path)
        if (rng.next_below(50) == 0) {
          q.clear();
          oracle.clear();
        }
        break;
      }
    }
    ASSERT_EQ(q.size(), oracle.size()) << "op " << op;
    EXPECT_EQ(q.empty(), oracle.empty());
    EXPECT_EQ(q.full(), oracle.size() == capacity);
    EXPECT_LE(q.max_occupancy(), capacity);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpscModelFuzz,
                         ::testing::Values(0x1u, 0x2u, 0x3u, 0x5eedu, 0xfu,
                                           0xabcdefu, 0x123456789u, 0x42u));

class SpscConcurrentFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpscConcurrentFuzz, RandomInterleavingsLoseNothingDuplicateNothing) {
  // Producer and consumer run with randomized burst lengths and yields so
  // the interleaving differs per seed and per run. The consumer must see
  // exactly 0..N-1 in order: any lost, duplicated, reordered, or phantom
  // token fails; occupancy must never exceed capacity.
  const std::uint64_t seed = GetParam();
  common::Rng setup(seed);
  const auto capacity = static_cast<std::size_t>(1 + setup.next_below(7));
  constexpr std::uint64_t kTokens = 10000;
  runtime::SpscQueue<std::uint64_t> q(capacity);

  std::thread producer([&q, seed] {
    common::Rng rng(seed ^ 0xBADC0FFEEull);
    std::uint64_t i = 0;
    while (i < kTokens) {
      const std::uint64_t burst = 1 + rng.next_below(8);
      for (std::uint64_t b = 0; b < burst && i < kTokens;) {
        if (q.try_push(std::uint64_t{i})) {
          ++i;
          ++b;
        } else {
          std::this_thread::yield();
        }
      }
      if (rng.next_below(4) == 0) std::this_thread::yield();
    }
  });

  common::Rng rng(seed ^ 0xF00Dull);
  std::uint64_t expected = 0;
  while (expected < kTokens) {
    const std::uint64_t burst = 1 + rng.next_below(8);
    for (std::uint64_t b = 0; b < burst && expected < kTokens; ++b) {
      if (auto v = q.try_pop()) {
        ASSERT_EQ(*v, expected) << "token lost/duplicated/reordered";
        ++expected;
      } else {
        std::this_thread::yield();
        break;
      }
    }
    if (rng.next_below(4) == 0) std::this_thread::yield();
  }
  producer.join();
  EXPECT_FALSE(q.try_pop().has_value()) << "phantom token after drain";
  EXPECT_LE(q.max_occupancy(), capacity);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpscConcurrentFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

// -------------------------------------------------- EventRing fuzzing

// Model-based fuzz for the telemetry ring's drop-oldest discipline.
// Single-threaded, so every outcome is deterministic: the oracle is a
// deque that, when the ring is full, evicts the oldest
// min(kDropChunk, capacity) entries in one go and charges them to the
// drop counter — exactly the producer's claim-drop. Catches FIFO
// violations, mis-sized drop chunks, and drop-counter drift.
class EventRingModelFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventRingModelFuzz, MatchesChunkDroppingDequeOracle) {
  common::Rng rng(GetParam());
  // Capacities straddling kDropChunk: below it a full ring evicts its
  // whole contents at once; above it, one chunk at a time.
  static constexpr std::size_t kCaps[] = {2, 8, 64, 128};
  const std::size_t capacity = kCaps[rng.next_below(4)];
  EventRing ring(capacity);
  ASSERT_EQ(ring.capacity(), capacity);
  const std::uint64_t chunk =
      std::min<std::uint64_t>(EventRing::kDropChunk, capacity);

  std::deque<std::uint64_t> oracle;
  std::uint64_t next_seq = 0;
  std::uint64_t dropped = 0;

  for (int op = 0; op < 20000; ++op) {
    if (rng.next_below(3) != 0) {  // emit 2:1 over pop — overflow is the point
      if (oracle.size() == capacity) {
        for (std::uint64_t k = 0; k < chunk; ++k) oracle.pop_front();
        dropped += chunk;
      }
      TelemetryEvent ev;
      ev.word0 = TelemetryEvent::pack0(EventKind::kFiringBatch, /*name_id=*/3,
                                       /*session=*/7);
      ev.begin_ns = next_seq;
      ev.end_ns = next_seq + 1;
      ev.arg0 = next_seq;
      ring.emit(ev);  // must always succeed: emit never blocks, never fails
      oracle.push_back(next_seq++);
    } else {
      TelemetryEvent out;
      const bool got = ring.try_pop(out);
      ASSERT_EQ(got, !oracle.empty()) << "op " << op;
      if (got) {
        EXPECT_EQ(out.arg0, oracle.front()) << "FIFO violated at op " << op;
        EXPECT_EQ(out.kind(), EventKind::kFiringBatch);
        EXPECT_EQ(out.name_id(), 3u);
        EXPECT_EQ(out.session(), 7u);
        oracle.pop_front();
      }
    }
    ASSERT_EQ(ring.size(), oracle.size()) << "op " << op;
    ASSERT_EQ(ring.dropped(), dropped) << "op " << op;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventRingModelFuzz,
                         ::testing::Values(0x1u, 0x2u, 0x3u, 0x5eedu, 0xfu,
                                           0xabcdefu, 0x123456789u, 0x42u));

class EventRingConcurrentFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventRingConcurrentFuzz, ProducerNeverBlocksConsumerSeesSubsequence) {
  // A producer that outruns the consumer must never block, never spin on
  // a full ring, and never fabricate data: whatever the consumer gets is
  // an untorn strict subsequence of what was emitted, and the books
  // balance exactly — delivered + dropped == emitted, with drops in
  // whole claim chunks.
  const std::uint64_t seed = GetParam();
  common::Rng setup(seed);
  const std::size_t capacity = std::size_t{8} << setup.next_below(4);  // 8..64
  constexpr std::uint64_t kEvents = 60000;
  EventRing ring(capacity);
  const std::uint64_t chunk =
      std::min<std::uint64_t>(EventRing::kDropChunk, capacity);

  std::atomic<bool> done{false};
  std::thread producer([&ring, &done, seed] {
    common::Rng rng(seed ^ 0xBADC0FFEEull);
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      TelemetryEvent ev;
      ev.word0 = TelemetryEvent::pack0(
          EventKind::kSteal, static_cast<std::uint16_t>(i & 0xffffu),
          static_cast<std::uint32_t>(i));
      ev.begin_ns = i;
      ev.end_ns = i;
      ev.arg0 = i;
      ev.arg1 = ~i;
      ring.emit(ev);  // unconditionally: a full ring drops, never stalls
      if (rng.next_below(64) == 0) std::this_thread::yield();
    }
    done.store(true, std::memory_order_release);
  });

  common::Rng rng(seed ^ 0xF00Dull);
  std::uint64_t received = 0;
  bool have_prev = false;
  std::uint64_t prev = 0;
  const auto consume_one = [&](const TelemetryEvent& ev) {
    const std::uint64_t i = ev.arg0;
    if (have_prev) {
      ASSERT_GT(i, prev) << "duplicated or reordered event";
    }
    have_prev = true;
    prev = i;
    // Untorn: every word of a delivered event must describe the same i.
    ASSERT_EQ(ev.kind(), EventKind::kSteal);
    ASSERT_EQ(ev.name_id(), static_cast<std::uint16_t>(i & 0xffffu));
    ASSERT_EQ(ev.session(), static_cast<std::uint32_t>(i));
    ASSERT_EQ(ev.begin_ns, i);
    ASSERT_EQ(ev.end_ns, i);
    ASSERT_EQ(ev.arg1, ~i) << "torn read delivered";
    ++received;
  };

  TelemetryEvent out;
  while (!done.load(std::memory_order_acquire)) {
    if (ring.try_pop(out)) {
      consume_one(out);
      if (::testing::Test::HasFatalFailure()) break;
    } else {
      std::this_thread::yield();
    }
    ASSERT_LE(ring.size(), capacity);
    if (rng.next_below(8) == 0) std::this_thread::yield();
  }
  producer.join();
  while (ring.try_pop(out)) {
    consume_one(out);
    if (::testing::Test::HasFatalFailure()) break;
  }

  // Exact conservation: every head advance was either one delivery or one
  // counted claim-drop chunk, so nothing is lost twice or invented.
  EXPECT_EQ(received + ring.dropped(), kEvents);
  EXPECT_EQ(ring.dropped() % chunk, 0u) << "drops not in whole chunks";
  EXPECT_EQ(ring.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventRingConcurrentFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

// ------------------------------------------- SpscQueue payload recycling

using BytePayload = std::vector<std::uint8_t>;

TEST(SpscRecycle, AcquireHandsBackTheConsumedBufferStorage) {
  runtime::SpscQueue<BytePayload> q(4, /*recycle=*/true);
  BytePayload p(64, 0xAB);
  const std::uint8_t* storage = p.data();
  ASSERT_TRUE(q.try_push(std::move(p)));
  ASSERT_NE(q.front(), nullptr);
  q.pop();
  // The buffer the consumer finished with comes back to the producer —
  // same heap storage, capacity intact, contents whatever the consumer
  // left (the engine clears before reuse).
  BytePayload r = q.acquire();
  EXPECT_EQ(r.data(), storage) << "storage was not recycled";
  EXPECT_GE(r.capacity(), 64u);
  EXPECT_EQ(q.recycle_hits(), 1u);
  // Bank is empty now: the next acquire falls back to a fresh buffer.
  EXPECT_EQ(q.acquire().capacity(), 0u);
  EXPECT_EQ(q.recycle_hits(), 1u);
}

TEST(SpscRecycle, OversizedBuffersAreFreedNotBanked) {
  // One pathological payload must not pin peak-sized storage in the
  // ring for the session's lifetime: above the cap it is freed on pop.
  runtime::SpscQueue<BytePayload> q(2, /*recycle=*/true);
  BytePayload huge;
  huge.reserve(runtime::SpscQueue<BytePayload>::kMaxRecycledCapacity + 1);
  huge.push_back(0x5A);
  ASSERT_TRUE(q.try_push(std::move(huge)));
  q.pop();
  EXPECT_EQ(q.acquire().capacity(), 0u) << "oversized buffer was banked";
  EXPECT_EQ(q.recycle_hits(), 0u);
}

TEST(SpscRecycle, RecyclingOffNeverBanksAndNeverReuses) {
  runtime::SpscQueue<BytePayload> q(2, /*recycle=*/false);
  ASSERT_TRUE(q.try_push(BytePayload(16, 1)));
  q.pop();
  EXPECT_EQ(q.acquire().capacity(), 0u);
  EXPECT_EQ(q.recycle_hits(), 0u);
}

TEST(SpscRecycle, SteadyStateReusesAFixedBufferSet) {
  // Producer always acquires before pushing: after the warm-up at most
  // `capacity + 1` distinct buffers may circulate, so the set of storage
  // pointers must saturate — the zero-allocation property in miniature.
  constexpr std::size_t kCapacity = 3;
  runtime::SpscQueue<BytePayload> q(kCapacity, /*recycle=*/true);
  std::vector<const std::uint8_t*> seen;
  std::uint64_t tokens = 0;
  for (int round = 0; round < 200; ++round) {
    while (!q.full()) {
      BytePayload buf = q.acquire();
      buf.clear();
      buf.resize(32);
      buf[0] = static_cast<std::uint8_t>(tokens++);
      if (std::find(seen.begin(), seen.end(), buf.data()) == seen.end()) {
        seen.push_back(buf.data());
      }
      ASSERT_TRUE(q.try_push(std::move(buf)));
    }
    while (!q.empty()) q.pop();
  }
  EXPECT_LE(seen.size(), kCapacity + 1)
      << "steady state must cycle a bounded buffer set";
  EXPECT_GT(q.recycle_hits(), 500u);
}

// Concurrent recycle fuzz (TSan target): the free ring crosses the same
// two threads as the data ring, in the opposite direction. Tokens carry
// their index so loss/duplication/reordering is still detected while
// both rings churn.
class SpscRecycleConcurrentFuzz
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpscRecycleConcurrentFuzz, BothRingsSurviveRandomInterleavings) {
  const std::uint64_t seed = GetParam();
  common::Rng setup(seed);
  const auto capacity = static_cast<std::size_t>(1 + setup.next_below(7));
  constexpr std::uint64_t kTokens = 10000;
  runtime::SpscQueue<BytePayload> q(capacity, /*recycle=*/true);

  std::thread producer([&q, seed] {
    common::Rng rng(seed ^ 0xBADC0FFEEull);
    std::uint64_t i = 0;
    while (i < kTokens) {
      BytePayload buf = q.acquire();
      buf.clear();
      buf.resize(8);
      for (int b = 0; b < 8; ++b) {
        buf[static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>(i >> (8 * b));
      }
      while (!q.try_push(std::move(buf))) std::this_thread::yield();
      ++i;
      if (rng.next_below(8) == 0) std::this_thread::yield();
    }
  });

  common::Rng rng(seed ^ 0xF00Dull);
  std::uint64_t expected = 0;
  while (expected < kTokens) {
    if (auto v = q.try_pop()) {
      ASSERT_EQ(v->size(), 8u);
      std::uint64_t token = 0;
      for (int b = 0; b < 8; ++b) {
        token |= static_cast<std::uint64_t>((*v)[static_cast<std::size_t>(b)])
                 << (8 * b);
      }
      ASSERT_EQ(token, expected) << "token lost/duplicated/reordered";
      ++expected;
    } else {
      std::this_thread::yield();
    }
    if (rng.next_below(8) == 0) std::this_thread::yield();
  }
  producer.join();
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_LE(q.max_occupancy(), capacity);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpscRecycleConcurrentFuzz,
                         ::testing::Values(7u, 77u, 777u, 0xACEDu));

// ---------------------------------------- encoder determinism across runs

TEST(Determinism, EncoderBitstreamsReproducible) {
  // Property: everything in the pipeline is deterministic — two fresh
  // encoders over the same synthetic input emit identical bytes.
  const auto run = [] {
    video::EncoderConfig cfg;
    cfg.width = 64;
    cfg.height = 64;
    cfg.gop_size = 4;
    cfg.rate_control = true;
    video::VideoEncoder enc(cfg);
    const auto scene = video::scene_high_motion(55);
    std::vector<std::uint8_t> all;
    for (int i = 0; i < 8; ++i) {
      const auto e = enc.encode(video::SyntheticVideo::render(64, 64, scene, i));
      all.insert(all.end(), e.bytes.begin(), e.bytes.end());
    }
    return all;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace mmsoc
