// Runtime telemetry: histogram bucket math, registry snapshots, drain
// callbacks, Chrome-trace export (parsed and structurally validated by a
// minimal JSON reader), engine metrics vs post-mortem reports, and the
// hot-path overhead guard the E-RT/OBS bench records.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "mpsoc/mapping.h"
#include "runtime/engine.h"
#include "runtime/pipelines.h"
#include "runtime/telemetry.h"

#if defined(__SANITIZE_THREAD__)
#define MMSOC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MMSOC_TSAN 1
#endif
#endif

namespace mmsoc {
namespace {

// ------------------------------------------------------------ histograms

TEST(Histogram, BucketBoundaries) {
  // Bucket b holds samples of bit width b: 0 -> bucket 0, 1 -> bucket 1,
  // [2^(b-1), 2^b - 1] -> bucket b. The edges are where off-by-ones live.
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(7), 3);
  EXPECT_EQ(Histogram::bucket_of(8), 4);
  EXPECT_EQ(Histogram::bucket_of((1ull << 32) - 1), 32);
  EXPECT_EQ(Histogram::bucket_of(1ull << 32), 33);
  EXPECT_EQ(Histogram::bucket_of(~0ull), 64);

  EXPECT_EQ(Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(Histogram::bucket_floor(1), 1u);
  EXPECT_EQ(Histogram::bucket_floor(2), 2u);
  EXPECT_EQ(Histogram::bucket_floor(3), 4u);
  EXPECT_EQ(Histogram::bucket_floor(64), 1ull << 63);
  // Every sample lands in the bucket whose floor bounds it from below.
  for (const std::uint64_t s : {0ull, 1ull, 5ull, 1000ull, 123456789ull}) {
    const int b = Histogram::bucket_of(s);
    EXPECT_GE(s, Histogram::bucket_floor(b)) << s;
    if (b < Histogram::kBuckets - 1) {
      EXPECT_LT(s, Histogram::bucket_floor(b + 1)) << s;
    }
  }
}

TEST(Histogram, RecordSnapshotMeanQuantile) {
  Histogram h;
  // 8 samples in bucket 7 ([64,127]), 2 in bucket 11 ([1024,2047]).
  for (int i = 0; i < 8; ++i) h.record(100);
  h.record(1500);
  h.record(2000);
  const auto s = h.snapshot();
  EXPECT_EQ(s.total(), 10u);
  EXPECT_EQ(s.counts[7], 8u);
  EXPECT_EQ(s.counts[11], 2u);
  EXPECT_EQ(s.sum, 8u * 100 + 1500 + 2000);
  EXPECT_DOUBLE_EQ(s.mean(), static_cast<double>(s.sum) / 10.0);
  // Quantiles resolve to bucket floors: the median bucket is 7, the tail
  // bucket 11.
  EXPECT_EQ(s.quantile(0.5), Histogram::bucket_floor(7));
  EXPECT_EQ(s.quantile(1.0), Histogram::bucket_floor(11));
  Histogram empty;
  EXPECT_EQ(empty.snapshot().total(), 0u);
  EXPECT_DOUBLE_EQ(empty.snapshot().mean(), 0.0);
  EXPECT_EQ(empty.snapshot().quantile(0.99), 0u);
}

TEST(Histogram, MergePreservesCountsAndSum) {
  Histogram a, b;
  a.record(10);
  a.record(20);
  b.record(10);
  b.record(5000);
  auto sa = a.snapshot();
  const auto sb = b.snapshot();
  sa.merge(sb);
  EXPECT_EQ(sa.total(), 4u);
  EXPECT_EQ(sa.sum, 10u + 20 + 10 + 5000);
  EXPECT_EQ(sa.counts[Histogram::bucket_of(10)],
            a.snapshot().counts[Histogram::bucket_of(10)] +
                sb.counts[Histogram::bucket_of(10)]);
}

TEST(MetricsRegistry, IdempotentRegistrationAndSnapshot) {
  MetricsRegistry reg;
  Counter* c1 = reg.counter("x.firings");
  Counter* c2 = reg.counter("x.firings");
  EXPECT_EQ(c1, c2);  // same name -> same stable instrument
  c1->add(3);
  reg.gauge("x.inflight")->set(-2);
  reg.histogram("x.lat_ns")->record(77);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or("x.firings"), 3u);
  EXPECT_EQ(snap.counter_or("missing", 42), 42u);
  EXPECT_EQ(snap.gauge_or("x.inflight"), -2);
  EXPECT_EQ(snap.histograms.at("x.lat_ns").total(), 1u);
}

// ------------------------------------------------- minimal JSON reader
// Just enough of RFC 8259 to structurally validate trace_json() output —
// the point is that a *real* parser (Perfetto, python json) accepts it.

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  const JsonValue* get(const std::string& key) const {
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\t' || s_[pos_] == '\r'))
      ++pos_;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool value(JsonValue& out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out.kind = JsonValue::kString; return string(out.str);
      case 't': out.kind = JsonValue::kBool; out.b = true; return literal("true");
      case 'f': out.kind = JsonValue::kBool; out.b = false; return literal("false");
      case 'n': out.kind = JsonValue::kNull; return literal("null");
      default: return number(out);
    }
  }
  bool object(JsonValue& out) {
    out.kind = JsonValue::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!value(v)) return false;
      out.obj.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array(JsonValue& out) {
    out.kind = JsonValue::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      JsonValue v;
      if (!value(v)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string(std::string& out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) return false;
            pos_ += 4;  // structural check only; keep a placeholder
            c = '?';
            break;
          default: return false;
        }
      }
      out += c;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number(JsonValue& out) {
    out.kind = JsonValue::kNumber;
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) return false;
    out.num = std::atof(s_.substr(start, pos_ - start).c_str());
    return true;
  }
};

// ----------------------------------------------------- telemetry core

TEST(Telemetry, InternRoundTrip) {
  TelemetryOptions opts;
  opts.collect_period_ms = 0;  // no collector thread in unit tests
  Telemetry tel(opts);
  EXPECT_EQ(tel.intern(""), 0);  // id 0 reserved for unnamed
  const std::uint16_t a = tel.intern("decode");
  const std::uint16_t b = tel.intern("quantize");
  EXPECT_NE(a, 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(tel.intern("decode"), a);  // idempotent
  EXPECT_EQ(tel.name_of(a), "decode");
  EXPECT_EQ(tel.name_of(b), "quantize");
  EXPECT_EQ(tel.name_of(0), "");
}

TEST(Telemetry, DrainCallbackFeedsDerivedMetricsAndResets) {
  TelemetryOptions opts;
  opts.collect_period_ms = 0;
  Telemetry tel(opts);
  Counter* seen = tel.metrics().counter("t.batches_seen");
  EventRing* ring = tel.register_track("t.worker0", [&](const TelemetryEvent& ev) {
    if (ev.kind() == EventKind::kFiringBatch) seen->add(1);
  });
  TelemetryEvent ev;
  ev.word0 = TelemetryEvent::pack0(EventKind::kFiringBatch, 0, 1);
  ev.begin_ns = 10;
  ev.end_ns = 20;
  ring->emit(ev);
  ring->emit(ev);
  EXPECT_EQ(seen->value(), 0u);  // nothing until a drain
  tel.flush();
  EXPECT_EQ(seen->value(), 2u);
  // Re-registering the same name returns the same ring, replacing the
  // callback; resetting detaches it (after one final drain).
  EXPECT_EQ(tel.register_track("t.worker0"), ring);
  ring->emit(ev);
  tel.reset_drain_callback(ring);
  ring->emit(ev);
  tel.flush();
  EXPECT_EQ(seen->value(), 2u);  // replaced + reset: no further counting
}

TEST(Telemetry, TraceExportParsesAndSlicesNest) {
  TelemetryOptions opts;
  opts.collect_period_ms = 0;
  Telemetry tel(opts);
  EventRing* w0 = tel.register_track("eng.worker0");
  EventRing* w1 = tel.register_track("eng.worker1");
  const std::uint16_t decode = tel.intern("decode");

  auto slice = [&](EventRing* r, EventKind k, std::uint16_t nid,
                   std::uint32_t sess, std::uint64_t b, std::uint64_t e,
                   std::uint64_t arg0) {
    TelemetryEvent ev;
    ev.word0 = TelemetryEvent::pack0(k, nid, sess);
    ev.begin_ns = b;
    ev.end_ns = e;
    ev.arg0 = arg0;
    r->emit(ev);
  };
  // worker0: two batches then a park — sequential, never overlapping.
  slice(w0, EventKind::kFiringBatch, decode, 1, 1000, 2000, 8);
  slice(w0, EventKind::kFiringBatch, decode, 1, 2500, 3000, 8);
  slice(w0, EventKind::kPark, 0, 0, 3100, 4000, 0);
  // worker0: an instant may legally fall inside earlier slices.
  slice(w0, EventKind::kIoStall, decode, 1, 1500, 1500, 250);
  // worker1: a steal instant and one batch.
  slice(w1, EventKind::kSteal, decode, 1, 900, 900, 0);
  slice(w1, EventKind::kFiringBatch, decode, 1, 1000, 1800, 4);

  const std::string json = tel.trace_json();
  JsonValue root;
  ASSERT_TRUE(JsonReader(json).parse(root)) << json;
  const JsonValue* events = root.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::kArray);

  std::map<double, std::string> track_names;           // tid -> name
  std::map<double, std::vector<std::pair<double, double>>> slices;  // tid -> (ts,dur)
  std::size_t batch_with_args = 0, instants = 0;
  for (const JsonValue& e : events->arr) {
    const JsonValue* ph = e.get("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "M") {
      ASSERT_EQ(e.get("name")->str, "thread_name");
      track_names[e.get("tid")->num] = e.get("args")->get("name")->str;
    } else if (ph->str == "X") {
      ASSERT_NE(e.get("dur"), nullptr);
      slices[e.get("tid")->num].emplace_back(e.get("ts")->num,
                                             e.get("dur")->num);
      if (e.get("cat")->str == "batch") {
        EXPECT_EQ(e.get("name")->str, "decode");  // interned name resolved
        const JsonValue* args = e.get("args");
        ASSERT_NE(args, nullptr);
        EXPECT_NE(args->get("firings"), nullptr);
        EXPECT_NE(args->get("session"), nullptr);
        ++batch_with_args;
      }
    } else if (ph->str == "i") {
      EXPECT_EQ(e.get("s")->str, "t");  // thread-scoped instant
      ++instants;
    }
  }
  ASSERT_EQ(track_names.size(), 2u);
  std::vector<std::string> names;
  for (const auto& [tid, name] : track_names) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"eng.worker0", "eng.worker1"}));
  EXPECT_EQ(batch_with_args, 3u);
  EXPECT_EQ(instants, 2u);
  // Per-track slices must not overlap (Perfetto renders overlap as a
  // malformed nesting); instants are exempt by construction.
  for (auto& [tid, v] : slices) {
    std::sort(v.begin(), v.end());
    for (std::size_t i = 1; i < v.size(); ++i) {
      EXPECT_GE(v[i].first + 1e-6, v[i - 1].first + v[i - 1].second)
          << "overlapping slices on tid " << tid;
    }
  }

  // write_trace produces the same parseable document on disk.
  const std::string path = ::testing::TempDir() + "/mmsoc_trace_test.json";
  ASSERT_TRUE(tel.write_trace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string from_disk;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) from_disk.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  JsonValue root2;
  EXPECT_TRUE(JsonReader(from_disk).parse(root2));
}

// ------------------------------------------- engine <-> metrics agreement

TEST(Telemetry, EngineMetricsAgreeWithSessionReport) {
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  TelemetryOptions topts;
  topts.collect_period_ms = 0;  // engine teardown drains via reset
  Telemetry tel(topts);

  auto pipe = runtime::make_synthetic_chain(4, 50.0);
  mpsoc::Mapping mapping(4);
  for (std::size_t t = 0; t < 4; ++t) mapping[t] = t % 2;
  runtime::EngineOptions opts;
  opts.workers = 2;
  opts.telemetry = &tel;
  opts.telemetry_prefix = "agree";
  const std::uint64_t kIters = 200;
  const auto report = runtime::run_pipeline(pipe.graph, mapping, kIters, opts);
  ASSERT_TRUE(report.is_ok());
  ASSERT_EQ(report.value().outcome, runtime::SessionOutcome::kCompleted);

  const auto snap = tel.metrics().snapshot();
  // The exactness contract: the live firings counter ends equal to the
  // post-mortem report's completed firings, and the session was counted.
  EXPECT_EQ(snap.counter_or("agree.firings"),
            report.value().completed_firings);
  EXPECT_EQ(snap.counter_or("agree.firings"), kIters * 4);
  EXPECT_EQ(snap.counter_or("agree.sessions_completed"), 1u);
  // Drain-fed pair: the batch counter and the batch-latency histogram are
  // fed from the same events, so they always agree with each other.
  const auto& h = snap.histograms.at("agree.batch_latency_ns");
  EXPECT_EQ(snap.counter_or("agree.batches"), h.total());
  EXPECT_GT(h.total(), 0u);
  EXPECT_GT(h.sum, 0u);
  // No ring pressure at this scale: nothing may have been dropped.
  EXPECT_EQ(tel.dropped(), 0u);
  // The trace itself has at least one batch slice per worker track.
  JsonValue root;
  ASSERT_TRUE(JsonReader(tel.trace_json()).parse(root));
  std::map<double, std::size_t> batches_per_tid;
  std::map<double, std::string> names;
  for (const JsonValue& e : root.get("traceEvents")->arr) {
    if (e.get("ph")->str == "M")
      names[e.get("tid")->num] = e.get("args")->get("name")->str;
    else if (e.get("ph")->str == "X" && e.get("cat")->str == "batch")
      ++batches_per_tid[e.get("tid")->num];
  }
  for (const auto& [tid, name] : names) {
    if (name.rfind("agree.worker", 0) == 0) {
      EXPECT_GT(batches_per_tid[tid], 0u) << name;
    }
  }
}

// ------------------------------------------------- Prometheus exposition

TEST(MetricsRegistry, PrometheusTextExposition) {
  // Identifier sanitization: dots/dashes become underscores, a leading
  // digit gets prefixed (Prometheus metric-name grammar).
  EXPECT_EQ(MetricsRegistry::sanitize_metric_name("shard0.batch.lat-ns"),
            "shard0_batch_lat_ns");
  EXPECT_EQ(MetricsRegistry::sanitize_metric_name("9lives"), "_9lives");

  MetricsRegistry reg;
  reg.counter("x.firings")->add(3);
  reg.gauge("x.inflight")->set(-2);
  Histogram* h = reg.histogram("x.lat_ns");
  h->record(0);     // bucket 0, le="0"
  h->record(100);   // bucket 7, le="127"
  h->record(100);
  h->record(1500);  // bucket 11, le="2047"
  const std::string text = reg.text_snapshot();
  EXPECT_NE(text.find("# TYPE x_firings counter\nx_firings 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE x_inflight gauge\nx_inflight -2\n"),
            std::string::npos);
  // Cumulative bucket family with le at the log2 upper edges.
  EXPECT_NE(text.find("x_lat_ns_bucket{le=\"0\"} 1\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("x_lat_ns_bucket{le=\"127\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("x_lat_ns_bucket{le=\"2047\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("x_lat_ns_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("x_lat_ns_sum 1700\n"), std::string::npos);
  EXPECT_NE(text.find("x_lat_ns_count 4\n"), std::string::npos);
  // Truncated after the last non-empty bucket: bucket 12 never renders.
  EXPECT_EQ(text.find("le=\"4095\""), std::string::npos);
}

// ----------------------------------------------------- frame journeys

TEST(FrameJourney, ChainLatencyMatchesClosedForm) {
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  // Three stages of a fixed D=2 ms sleep each: a sampled unit's
  // end-to-end latency is bounded below by 3D exactly (every unit passes
  // every stage), and every per-stage service time by D. Sleep-based
  // bodies make the lower bounds deterministic even on a loaded CI box;
  // the upper bounds are generous slack, not the model.
  constexpr std::uint64_t kIters = 8;
  constexpr double kBodyS = 2e-3;
  mpsoc::TaskGraph g("journey");
  mpsoc::Task t;
  t.body = [](mpsoc::TaskFiring& f) {
    std::this_thread::sleep_for(std::chrono::duration<double>(2e-3));
    for (std::size_t k = 0; k < f.outputs.size(); ++k) {
      f.outputs[k] = mpsoc::Payload{static_cast<std::uint8_t>(f.iteration)};
    }
  };
  t.name = "ingest";
  const auto a = g.add_task(t);
  t.name = "process";
  const auto b = g.add_task(t);
  t.name = "emit";
  const auto c = g.add_task(t);
  (void)g.add_edge(a, b, 4);
  (void)g.add_edge(b, c, 4);

  TelemetryOptions topts;
  topts.collect_period_ms = 0;
  topts.unit_sample_period = 1;  // trace every unit
  Telemetry tel(topts);
  runtime::EngineOptions opts;
  opts.workers = 1;
  opts.telemetry = &tel;
  opts.telemetry_prefix = "fj";
  const auto rep = runtime::run_pipeline(g, mpsoc::Mapping(3, 0), kIters, opts);
  ASSERT_TRUE(rep.is_ok()) << rep.status().to_text();
  const auto& ut = rep.value().unit_trace;

  ASSERT_TRUE(ut.enabled());
  EXPECT_EQ(ut.sample_period, 1u);
  // Every unit retired at the sink, and the histogram counted each once.
  EXPECT_EQ(ut.sampled_completed, kIters);
  EXPECT_EQ(ut.latency.total(), kIters);
  ASSERT_EQ(ut.stages.size(), 3u);
  for (const auto& s : ut.stages) {
    EXPECT_EQ(s.sampled, kIters) << s.name;
    EXPECT_GE(s.mean_service_s(), kBodyS) << s.name;
    EXPECT_LT(s.mean_service_s(), 50 * kBodyS) << s.name;
    EXPECT_GE(s.mean_queue_wait_s(), 0.0) << s.name;
  }
  // Closed form: latency(unit) >= stages * D, always.
  EXPECT_GE(ut.min_latency_s, 3 * kBodyS);
  EXPECT_GE(ut.mean_latency_s(), 3 * kBodyS);
  EXPECT_LT(ut.mean_latency_s(), 1.0);
  EXPECT_GE(ut.max_latency_s, ut.min_latency_s);
  EXPECT_GE(ut.jitter_s, 0.0);
  EXPECT_NE(ut.dominant_stage(), SIZE_MAX);

  // Direct-fed exactness: the per-session latency histogram in the
  // registry holds exactly the sampled completions; so does the counter.
  const auto snap = tel.metrics().snapshot();
  EXPECT_EQ(snap.histograms.at("fj.session0.frame_latency_ns").total(), kIters);
  EXPECT_EQ(snap.counter_or("fj.units_sampled"), kIters);

  // The trace carries one flow chain per unit: ph "s" at the source,
  // "t" at the interior stage, "f" (bp="e") at the sink, all sharing the
  // (session<<32)|unit id.
  JsonValue root;
  ASSERT_TRUE(JsonReader(tel.trace_json()).parse(root));
  std::map<std::string, std::vector<std::pair<std::string, std::string>>>
      chains;  // flow id -> (ph, stage)
  for (const JsonValue& e : root.get("traceEvents")->arr) {
    const std::string& ph = e.get("ph")->str;
    if (ph != "s" && ph != "t" && ph != "f") continue;
    EXPECT_EQ(e.get("cat")->str, "unit");
    const JsonValue* args = e.get("args");
    ASSERT_NE(args, nullptr);
    ASSERT_NE(args->get("stage"), nullptr);
    chains[e.get("id")->str].emplace_back(ph, args->get("stage")->str);
    if (ph == "f") {
      EXPECT_EQ(e.get("bp")->str, "e");
      EXPECT_NE(args->get("latency_ns"), nullptr);
    } else {
      EXPECT_NE(args->get("service_ns"), nullptr);
    }
  }
  ASSERT_EQ(chains.size(), kIters);  // one chain per unit
  const auto it = chains.find("0x100000000");  // session 1, unit 0
  ASSERT_NE(it, chains.end());
  std::map<std::string, std::string> ph_by_stage;
  for (const auto& [ph, stage] : it->second) ph_by_stage[stage] = ph;
  ASSERT_EQ(ph_by_stage.size(), 3u) << "unit 0 must pass every stage";
  EXPECT_EQ(ph_by_stage.at("ingest"), "s");
  EXPECT_EQ(ph_by_stage.at("process"), "t");
  EXPECT_EQ(ph_by_stage.at("emit"), "f");
}

TEST(FrameJourney, SamplingPeriodsCountAndPreserveOutput) {
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  // Tracing is observation only: the sink digest must be bit-identical
  // with sampling off, 1-in-1, and 1-in-5 — and the sampled-unit count
  // must follow ceil(iterations / period) exactly (unit 0 is sampled).
  constexpr std::uint64_t kIters = 37;
  std::map<std::size_t, std::uint64_t> digests;
  for (const std::size_t period : {std::size_t{0}, std::size_t{1},
                                   std::size_t{5}}) {
    TelemetryOptions topts;
    topts.collect_period_ms = 0;
    topts.unit_sample_period = period;
    Telemetry tel(topts);
    auto pipe = runtime::make_synthetic_chain(4, 200.0);
    mpsoc::Mapping mapping(4);
    for (std::size_t t = 0; t < 4; ++t) mapping[t] = t % 2;
    runtime::EngineOptions opts;
    opts.workers = 2;
    opts.telemetry = &tel;
    opts.telemetry_prefix = "sp";
    const auto rep = runtime::run_pipeline(pipe.graph, mapping, kIters, opts);
    ASSERT_TRUE(rep.is_ok()) << rep.status().to_text();
    digests[period] = pipe.sink->digest.load();
    const auto& ut = rep.value().unit_trace;
    if (period == 0) {
      EXPECT_FALSE(ut.enabled());
      EXPECT_EQ(ut.sampled_completed, 0u);
    } else {
      ASSERT_TRUE(ut.enabled());
      EXPECT_EQ(ut.sampled_completed, (kIters + period - 1) / period);
      EXPECT_EQ(ut.latency.total(), ut.sampled_completed);
    }
  }
  EXPECT_EQ(digests.at(0), digests.at(1));
  EXPECT_EQ(digests.at(0), digests.at(5));
}

TEST(FrameJourney, WatchdogFlagsWedgedSession) {
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";
  // A session whose source gate never opens completes zero firings: the
  // watchdog must flag it after `watchdog_periods` stagnant polls and
  // dump per-task gate/queue state naming the closed gate.
  TelemetryOptions topts;
  topts.collect_period_ms = 0;  // no collector: polled manually below
  topts.watchdog_periods = 3;
  Telemetry tel(topts);

  mpsoc::TaskGraph g("wedged");
  mpsoc::Task src;
  src.name = "stuck-source";
  src.body = [](mpsoc::TaskFiring& f) { f.outputs[0] = mpsoc::Payload{1}; };
  mpsoc::Task snk;
  snk.name = "sink";
  snk.body = [](mpsoc::TaskFiring&) {};
  const auto s = g.add_task(src);
  const auto k = g.add_task(snk);
  (void)g.add_edge(s, k, 2);
  g.set_gate(s, [] { return false; });  // device never delivers

  runtime::EngineOptions opts;
  opts.workers = 1;
  opts.telemetry = &tel;
  opts.telemetry_prefix = "wd";
  runtime::Engine engine(opts);
  ASSERT_TRUE(engine.add_session(g, mpsoc::Mapping(2, 0), 10).is_ok());
  ASSERT_TRUE(engine.start().is_ok());
  // Let the worker wire the session and park on the closed gate.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  EXPECT_TRUE(engine.stall_reports().empty());
  // Poll 1 arms the baseline; polls 2..4 count three stagnant periods.
  for (int i = 0; i < 5; ++i) tel.poll_watchdogs();

  const auto reports = engine.stall_reports();
  ASSERT_EQ(reports.size(), 1u) << "flagged once, not re-reported each poll";
  EXPECT_NE(reports[0].find("'wedged'"), std::string::npos) << reports[0];
  EXPECT_NE(reports[0].find("stalled"), std::string::npos);
  EXPECT_NE(reports[0].find("'stuck-source'"), std::string::npos);
  EXPECT_NE(reports[0].find("gate=CLOSED"), std::string::npos);
  EXPECT_EQ(tel.metrics().snapshot().counter_or("wd.watchdog.stalls"), 1u);

  engine.cancel(0);
  EXPECT_TRUE(engine.wait().is_ok());
  EXPECT_EQ(engine.report(0).outcome, runtime::SessionOutcome::kCancelled);
  // A cancelled (resolved) session resets cleanly: no further reports.
  for (int i = 0; i < 5; ++i) tel.poll_watchdogs();
  EXPECT_EQ(engine.stall_reports().size(), 1u);
}

// --------------------------------------------------- overhead guard

// The E-RT/OBS acceptance bound, as a regression test: telemetry on must
// sustain >= 97% of telemetry-off throughput on the hot configuration.
// "On" now includes default frame-journey tracing (1-in-16 units), so the
// whole default telemetry stack shares the one 3% budget and the margin
// is thinner than batch-events-only. Interleaved best-of pairs tame
// scheduler noise (CI may be one core); the pair/attempt counts are sized
// so a genuine 3%+ regression still fails every attempt while a noisy
// neighbour does not.
TEST(Telemetry, HotPathOverheadWithinBudget) {
#if defined(MMSOC_TSAN)
  GTEST_SKIP() << "instrumented build: timing bounds are meaningless";
#endif
  if (!kTelemetryCompiled) GTEST_SKIP() << "telemetry compiled out";

  constexpr std::uint64_t kIters = 6000;
  constexpr int kPairs = 8;
  constexpr int kAttempts = 4;
  constexpr double kBudget = 0.97;

  TelemetryOptions topts;
  topts.ring_capacity = 16384;    // sized for the rate; see README sizing rule
  topts.collect_period_ms = 100;  // drains land in the flush below, not mid-run
  Telemetry tel(topts);

  const auto run_once = [&](Telemetry* sink) {
    auto pipe = runtime::make_synthetic_chain(8, 25.0);
    mpsoc::Mapping mapping(8);
    for (std::size_t t = 0; t < 8; ++t) mapping[t] = t % 2;
    runtime::EngineOptions opts;
    opts.workers = 2;
    opts.channel_capacity = 16;
    opts.firing_quantum = 8;
    opts.recycle_payloads = true;
    opts.telemetry = sink;
    opts.telemetry_prefix = "guard";
    const auto report = runtime::run_pipeline(pipe.graph, mapping, kIters, opts);
    if (!report.is_ok() || report.value().wall_s <= 0.0) return 0.0;
    return static_cast<double>(kIters) / report.value().wall_s;
  };

  double best_ratio = 0.0;
  for (int attempt = 0; attempt < kAttempts && best_ratio < kBudget; ++attempt) {
    for (int p = 0; p < kPairs; ++p) {
      const double off = run_once(nullptr);
      const double on = run_once(&tel);
      tel.flush();
      ASSERT_GT(off, 0.0);
      ASSERT_GT(on, 0.0);
      // Best per-pair ratio: a pair's runs are adjacent, so outside noise
      // hits both sides alike and cancels in the quotient (ratio analogue
      // of min-of-N timing). Ratios of maxima from disjoint windows do not
      // get that cancellation.
      best_ratio = std::max(best_ratio, on / off);
      if (best_ratio >= kBudget) break;
    }
  }
  EXPECT_GE(best_ratio, kBudget)
      << "telemetry-on throughput fell more than 3% below telemetry-off";
}

}  // namespace
}  // namespace mmsoc
