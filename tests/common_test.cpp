// Unit and property tests for the common substrate: bitstream, CRC,
// PRNG, fixed-point, math utilities, status types.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/bitstream.h"
#include "common/crc32.h"
#include "common/fixed.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "common/status.h"

namespace mmsoc::common {
namespace {

// ---------------------------------------------------------------- bitstream

TEST(BitWriter, EmptyTakeIsEmpty) {
  BitWriter w;
  EXPECT_TRUE(w.take().empty());
}

TEST(BitWriter, SingleByteMsbFirst) {
  BitWriter w;
  w.put_bits(0b10110001, 8);
  const auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10110001);
}

TEST(BitWriter, CrossByteField) {
  BitWriter w;
  w.put_bits(0b101, 3);
  w.put_bits(0b11111, 5);
  w.put_bits(0xAB, 8);
  const auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0b10111111);
  EXPECT_EQ(bytes[1], 0xAB);
}

TEST(BitWriter, AlignPadsWithZeros) {
  BitWriter w;
  w.put_bits(0b1, 1);
  w.align_to_byte();
  const auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10000000);
}

TEST(BitWriter, SixtyFourBitValue) {
  BitWriter w;
  const std::uint64_t v = 0xDEADBEEFCAFEBABEull;
  w.put_bits(v, 64);
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.get_bits(64), v);
}

TEST(BitStream, RandomFieldRoundTrip) {
  // Property: any sequence of (value, width) fields reads back exactly.
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::pair<std::uint64_t, unsigned>> fields;
    BitWriter w;
    const int n = static_cast<int>(rng.next_in(1, 200));
    for (int i = 0; i < n; ++i) {
      const unsigned width = static_cast<unsigned>(rng.next_in(1, 64));
      std::uint64_t value = rng.next();
      if (width < 64) value &= (std::uint64_t{1} << width) - 1;
      fields.emplace_back(value, width);
      w.put_bits(value, width);
    }
    const auto bytes = w.take();
    BitReader r(bytes);
    for (const auto& [value, width] : fields) {
      EXPECT_EQ(r.get_bits(width), value) << "trial " << trial;
    }
    EXPECT_TRUE(r.ok());
  }
}

TEST(BitReader, UnderrunClearsOkAndReturnsZero) {
  const std::uint8_t one_byte[] = {0xFF};
  BitReader r({one_byte, 1});
  EXPECT_EQ(r.get_bits(8), 0xFFu);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.get_bits(1), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(BitReader, PeekDoesNotConsume) {
  const std::uint8_t data[] = {0b10100000};
  BitReader r({data, 1});
  EXPECT_EQ(r.peek_bits(3), 0b101u);
  EXPECT_EQ(r.peek_bits(3), 0b101u);
  EXPECT_EQ(r.get_bits(3), 0b101u);
}

TEST(BitReader, PeekPastEndReadsZeros) {
  const std::uint8_t data[] = {0b11000000};
  BitReader r({data, 1});
  r.skip_bits(7);
  EXPECT_EQ(r.peek_bits(8), 0u);  // last real bit is 0, rest zero-padded
  EXPECT_TRUE(r.ok());            // peek never clears ok
}

class ExpGolombRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ExpGolombRoundTrip, Unsigned) {
  BitWriter w;
  w.put_ue(GetParam());
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.get_ue(), GetParam());
  EXPECT_TRUE(r.ok());
}

TEST_P(ExpGolombRoundTrip, SignedBothSigns) {
  const auto magnitude = static_cast<std::int32_t>(GetParam() & 0x7FFFFFFF);
  for (const std::int32_t v : {magnitude, -magnitude}) {
    BitWriter w;
    w.put_se(v);
    const auto bytes = w.take();
    BitReader r(bytes);
    EXPECT_EQ(r.get_se(), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Values, ExpGolombRoundTrip,
                         ::testing::Values(0u, 1u, 2u, 3u, 7u, 8u, 100u,
                                           255u, 256u, 65535u, 1u << 20,
                                           0x7FFFFFFEu));

TEST(ExpGolomb, SequenceRoundTrip) {
  Rng rng(7);
  BitWriter w;
  std::vector<std::int32_t> values;
  for (int i = 0; i < 1000; ++i) {
    const auto v = static_cast<std::int32_t>(rng.next_in(-100000, 100000));
    values.push_back(v);
    w.put_se(v);
  }
  const auto bytes = w.take();
  BitReader r(bytes);
  for (const auto v : values) EXPECT_EQ(r.get_se(), v);
  EXPECT_TRUE(r.ok());
}

TEST(BitReader, AlignToByteSkipsToBoundary) {
  const std::uint8_t data[] = {0xFF, 0x01};
  BitReader r({data, 2});
  r.get_bits(3);
  r.align_to_byte();
  EXPECT_EQ(r.bit_position(), 8u);
  EXPECT_EQ(r.get_bits(8), 0x01u);
}

// -------------------------------------------------------------------- crc32

TEST(Crc32, KnownVector) {
  // The canonical CRC-32 check value of "123456789".
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32({data, 9}), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32({}), 0x00000000u); }

TEST(Crc32, IncrementalMatchesOneShot) {
  Rng rng(3);
  std::vector<std::uint8_t> data(1024);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  Crc32 inc;
  inc.update({data.data(), 100});
  inc.update({data.data() + 100, 924});
  EXPECT_EQ(inc.value(), crc32(data));
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(64, 0xA5);
  const auto before = crc32(data);
  data[17] ^= 0x04;
  EXPECT_NE(crc32(data), before);
}

// ---------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  EXPECT_EQ(rng.next_in(9, 9), 9);
  EXPECT_EQ(rng.next_in(10, 3), 10);  // degenerate bounds return lo
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  const double m = sum / n;
  const double var = sum2 / n - m * m;
  EXPECT_NEAR(m, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

// -------------------------------------------------------------------- fixed

TEST(Fixed, FromIntRoundTrip) {
  for (int v = -1000; v <= 1000; v += 37) {
    EXPECT_EQ(Q15::from_int(v).to_int(), v);
  }
}

TEST(Fixed, FromDoubleAccuracy) {
  for (double v = -10.0; v <= 10.0; v += 0.137) {
    EXPECT_NEAR(Q15::from_double(v).to_double(), v, 1.0 / 32768.0);
  }
}

TEST(Fixed, AdditionMatchesDouble) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.next_double_in(-100, 100);
    const double b = rng.next_double_in(-100, 100);
    const auto r = Q15::from_double(a) + Q15::from_double(b);
    EXPECT_NEAR(r.to_double(), a + b, 3.0 / 32768.0);
  }
}

TEST(Fixed, MultiplicationMatchesDouble) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.next_double_in(-30, 30);
    const double b = rng.next_double_in(-30, 30);
    const auto r = Q15::from_double(a) * Q15::from_double(b);
    EXPECT_NEAR(r.to_double(), a * b, 0.01);
  }
}

TEST(Fixed, DivisionMatchesDouble) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    const double a = rng.next_double_in(-100, 100);
    double b = rng.next_double_in(0.5, 50);
    if (rng.next_bool(0.5)) b = -b;
    const auto r = Q15::from_double(a) / Q15::from_double(b);
    EXPECT_NEAR(r.to_double(), a / b, 0.02);
  }
}

TEST(Fixed, SaturatesInsteadOfWrapping) {
  const auto big = Q15::from_double(65000.0);
  const auto sum = big + big;
  EXPECT_GT(sum.to_double(), 65000.0);  // saturated at max, did not wrap negative
  const auto neg = -big - big;
  EXPECT_LT(neg.to_double(), -65000.0);
}

TEST(Fixed, DivisionByZeroSaturates) {
  const auto r = Q15::from_int(5) / Q15::from_raw(0);
  EXPECT_GT(r.to_double(), 60000.0);
}

TEST(Fixed, ComparisonOperators) {
  EXPECT_LT(Q15::from_double(1.5), Q15::from_double(2.5));
  EXPECT_EQ(Q15::from_int(3), Q15::from_int(3));
}

// ----------------------------------------------------------------- mathutil

TEST(MathUtil, ClampU8) {
  EXPECT_EQ(clamp_u8(-5), 0);
  EXPECT_EQ(clamp_u8(0), 0);
  EXPECT_EQ(clamp_u8(128), 128);
  EXPECT_EQ(clamp_u8(255), 255);
  EXPECT_EQ(clamp_u8(900), 255);
}

TEST(MathUtil, ClampS16) {
  EXPECT_EQ(clamp_s16(-40000), -32768);
  EXPECT_EQ(clamp_s16(40000), 32767);
  EXPECT_EQ(clamp_s16(123), 123);
}

TEST(MathUtil, Ilog2) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(1024), 10u);
  EXPECT_EQ(ilog2((1ull << 63)), 63u);
}

TEST(MathUtil, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
}

TEST(MathUtil, RoundUp) {
  EXPECT_EQ(round_up(0, 8), 0u);
  EXPECT_EQ(round_up(1, 8), 8u);
  EXPECT_EQ(round_up(8, 8), 8u);
  EXPECT_EQ(round_up(9, 8), 16u);
}

TEST(MathUtil, MeanVariance) {
  const double xs[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean({xs, 4}), 2.5);
  EXPECT_DOUBLE_EQ(variance({xs, 4}), 1.25);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(MathUtil, ToDbFloorsTinyRatios) {
  EXPECT_NEAR(to_db(1.0), 0.0, 1e-9);
  EXPECT_NEAR(to_db(100.0), 20.0, 1e-9);
  EXPECT_GT(to_db(0.0), -130.0);  // floored, not -inf
}

// ------------------------------------------------------------------- status

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_text(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s(StatusCode::kNotFound, "missing title");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.to_text(), "not_found: missing title");
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(StatusCode::kCorruptData, "bad bits");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruptData);
  EXPECT_EQ(r.value_or(-1), -1);
}

}  // namespace
}  // namespace mmsoc::common
