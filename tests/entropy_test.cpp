// Tests for entropy coding: zig-zag, Huffman, run-length, rate buffer.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/bitstream.h"
#include "common/rng.h"
#include "entropy/huffman.h"
#include "entropy/rate_buffer.h"
#include "entropy/rle.h"
#include "entropy/zigzag.h"

namespace mmsoc::entropy {
namespace {

using common::BitReader;
using common::BitWriter;
using common::Rng;

// ------------------------------------------------------------------ zigzag

TEST(ZigZag, IsPermutation) {
  std::array<bool, 64> seen{};
  for (const int idx : kZigZag8x8) {
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, 64);
    EXPECT_FALSE(seen[static_cast<std::size_t>(idx)]);
    seen[static_cast<std::size_t>(idx)] = true;
  }
}

TEST(ZigZag, InverseIsConsistent) {
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(kZigZagInv8x8[static_cast<std::size_t>(kZigZag8x8[static_cast<std::size_t>(i)])], i);
  }
}

TEST(ZigZag, StartsAtDcAndWalksAntidiagonals) {
  EXPECT_EQ(kZigZag8x8[0], 0);   // DC first
  EXPECT_EQ(kZigZag8x8[1], 1);   // right
  EXPECT_EQ(kZigZag8x8[2], 8);   // down-left
  EXPECT_EQ(kZigZag8x8[63], 63); // highest frequency last
  // Scan position is ordered by anti-diagonal (frequency) overall:
  // position p's (row+col) never decreases by more than 0 across steps.
  for (int i = 1; i < 64; ++i) {
    const int prev = kZigZag8x8[static_cast<std::size_t>(i - 1)];
    const int cur = kZigZag8x8[static_cast<std::size_t>(i)];
    const int dprev = prev / 8 + prev % 8;
    const int dcur = cur / 8 + cur % 8;
    EXPECT_GE(dcur, dprev - 1);
  }
}

// ----------------------------------------------------------------- huffman

TEST(Huffman, RejectsEmptyAndAllZero) {
  EXPECT_FALSE(HuffmanCode::from_frequencies({}).is_ok());
  const std::uint64_t zeros[4] = {0, 0, 0, 0};
  EXPECT_FALSE(HuffmanCode::from_frequencies({zeros, 4}).is_ok());
}

TEST(Huffman, SingleSymbolGetsOneBit) {
  const std::uint64_t freqs[3] = {0, 5, 0};
  auto code = HuffmanCode::from_frequencies({freqs, 3});
  ASSERT_TRUE(code.is_ok());
  EXPECT_EQ(code.value().length(1), 1u);
  EXPECT_EQ(code.value().length(0), 0u);
}

TEST(Huffman, TwoSymbolsGetOneBitEach) {
  const std::uint64_t freqs[2] = {1, 1000};
  auto code = HuffmanCode::from_frequencies({freqs, 2});
  ASSERT_TRUE(code.is_ok());
  EXPECT_EQ(code.value().length(0), 1u);
  EXPECT_EQ(code.value().length(1), 1u);
}

TEST(Huffman, MoreFrequentSymbolsGetShorterCodes) {
  const std::uint64_t freqs[4] = {1000, 100, 10, 1};
  auto code = HuffmanCode::from_frequencies({freqs, 4});
  ASSERT_TRUE(code.is_ok());
  EXPECT_LE(code.value().length(0), code.value().length(1));
  EXPECT_LE(code.value().length(1), code.value().length(2));
  EXPECT_LE(code.value().length(2), code.value().length(3));
}

TEST(Huffman, KraftEqualityForCompleteCode) {
  Rng rng(1);
  std::vector<std::uint64_t> freqs(50);
  for (auto& f : freqs) f = rng.next_below(1000) + 1;
  auto code = HuffmanCode::from_frequencies(freqs);
  ASSERT_TRUE(code.is_ok());
  double kraft = 0.0;
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    kraft += std::pow(2.0, -static_cast<double>(code.value().length(s)));
  }
  EXPECT_NEAR(kraft, 1.0, 1e-9);  // optimal codes are complete
}

TEST(Huffman, ExpectedLengthWithinOneBitOfEntropy) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint64_t> freqs(64);
    for (auto& f : freqs) f = rng.next_below(10000) + 1;
    auto code = HuffmanCode::from_frequencies(freqs);
    ASSERT_TRUE(code.is_ok());
    const double h = entropy_bits(freqs);
    const double l = code.value().expected_length(freqs);
    EXPECT_GE(l, h - 1e-9);
    EXPECT_LE(l, h + 1.0);
  }
}

TEST(Huffman, RespectsMaxBitsLimit) {
  // Exponentially skewed frequencies would produce very long codes
  // without the limit.
  std::vector<std::uint64_t> freqs(20);
  std::uint64_t f = 1;
  for (auto& x : freqs) {
    x = f;
    f *= 3;
  }
  auto code = HuffmanCode::from_frequencies(freqs, 8);
  ASSERT_TRUE(code.is_ok());
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    EXPECT_LE(code.value().length(s), 8u);
    EXPECT_GE(code.value().length(s), 1u);
  }
}

TEST(Huffman, MaxBitsTooSmallIsRejected) {
  std::vector<std::uint64_t> freqs(300, 1);
  EXPECT_FALSE(HuffmanCode::from_frequencies(freqs, 8).is_ok());  // 2^8 < 300
}

TEST(Huffman, EncodeDecodeRoundTrip) {
  Rng rng(3);
  std::vector<std::uint64_t> freqs(128);
  for (auto& f : freqs) f = rng.next_below(500) + 1;
  auto built = HuffmanCode::from_frequencies(freqs);
  ASSERT_TRUE(built.is_ok());
  const auto& code = built.value();

  std::vector<std::size_t> symbols;
  BitWriter w;
  for (int i = 0; i < 5000; ++i) {
    const auto s = rng.next_below(freqs.size());
    symbols.push_back(s);
    ASSERT_TRUE(code.encode(s, w));
  }
  const auto bytes = w.take();
  BitReader r(bytes);
  for (const auto expected : symbols) {
    EXPECT_EQ(code.decode(r), static_cast<int>(expected));
  }
}

TEST(Huffman, SymbolWithoutCodeCannotEncode) {
  const std::uint64_t freqs[3] = {5, 0, 5};
  auto code = HuffmanCode::from_frequencies({freqs, 3});
  ASSERT_TRUE(code.is_ok());
  BitWriter w;
  EXPECT_FALSE(code.value().encode(1, w));
}

TEST(Huffman, FromLengthsReconstructsIdenticalCode) {
  Rng rng(4);
  std::vector<std::uint64_t> freqs(40);
  for (auto& f : freqs) f = rng.next_below(999) + 1;
  auto a = HuffmanCode::from_frequencies(freqs);
  ASSERT_TRUE(a.is_ok());
  auto b = HuffmanCode::from_lengths(a.value().lengths());
  ASSERT_TRUE(b.is_ok());
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    EXPECT_EQ(a.value().length(s), b.value().length(s));
    EXPECT_EQ(a.value().codeword(s), b.value().codeword(s));
  }
}

TEST(Huffman, OversubscribedLengthsRejected) {
  // Three symbols of length 1 violate Kraft.
  const std::uint8_t lengths[3] = {1, 1, 1};
  EXPECT_FALSE(HuffmanCode::from_lengths({lengths, 3}).is_ok());
}

TEST(Huffman, LengthTableSerializationRoundTrip) {
  Rng rng(5);
  std::vector<std::uint64_t> freqs(200, 0);
  // Sparse alphabet: long zero runs exercise the RLE path.
  for (int i = 0; i < 30; ++i) freqs[rng.next_below(200)] = rng.next_below(100) + 1;
  auto code = HuffmanCode::from_frequencies(freqs);
  ASSERT_TRUE(code.is_ok());
  BitWriter w;
  write_code_lengths(code.value(), w);
  const auto bytes = w.take();
  BitReader r(bytes);
  auto parsed = read_code_lengths(r);
  ASSERT_TRUE(parsed.is_ok());
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    EXPECT_EQ(parsed.value().length(s), code.value().length(s));
  }
}

TEST(Huffman, DecodeOnGarbageReturnsMinusOne) {
  const std::uint64_t freqs[5] = {100, 50, 20, 10, 3};
  auto code = HuffmanCode::from_frequencies({freqs, 5});
  ASSERT_TRUE(code.is_ok());
  BitReader r({});  // empty stream
  EXPECT_EQ(code.value().decode(r), -1);
}

TEST(Entropy, UniformDistributionMaximizesEntropy) {
  std::vector<std::uint64_t> uniform(16, 10);
  EXPECT_NEAR(entropy_bits(uniform), 4.0, 1e-9);
  std::vector<std::uint64_t> skewed(16, 1);
  skewed[0] = 10000;
  EXPECT_LT(entropy_bits(skewed), 1.0);
  EXPECT_DOUBLE_EQ(entropy_bits({}), 0.0);
}

// --------------------------------------------------------------------- rle

TEST(Rle, EmptyBlockIsJustEob) {
  std::array<std::int16_t, 64> block{};
  const auto events = run_length_encode(block);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].is_eob());
}

TEST(Rle, RoundTripRandomSparseBlocks) {
  Rng rng(6);
  for (int trial = 0; trial < 200; ++trial) {
    std::array<std::int16_t, 64> block{};
    block[0] = static_cast<std::int16_t>(rng.next_in(-500, 500));  // DC untouched
    const int nonzeros = static_cast<int>(rng.next_below(20));
    for (int i = 0; i < nonzeros; ++i) {
      const auto pos = 1 + rng.next_below(63);
      auto v = static_cast<std::int16_t>(rng.next_in(-300, 300));
      if (v == 0) v = 1;
      block[pos] = v;
    }
    const auto events = run_length_encode(block);
    std::array<std::int16_t, 64> decoded{};
    decoded[0] = block[0];
    ASSERT_TRUE(run_length_decode(events, decoded));
    EXPECT_EQ(decoded, block) << "trial " << trial;
  }
}

TEST(Rle, DenseBlockRoundTrip) {
  std::array<std::int16_t, 64> block;
  for (int i = 0; i < 64; ++i) block[static_cast<std::size_t>(i)] = static_cast<std::int16_t>(i + 1);
  const auto events = run_length_encode(block);
  std::array<std::int16_t, 64> decoded{};
  decoded[0] = block[0];
  ASSERT_TRUE(run_length_decode(events, decoded));
  EXPECT_EQ(decoded, block);
}

TEST(Rle, MissingEobFailsDecode) {
  std::vector<RunLevel> events = {{0, 5}, {2, -3}};  // no EOB
  std::array<std::int16_t, 64> block{};
  EXPECT_FALSE(run_length_decode(events, block));
}

TEST(Rle, OverflowingRunFailsDecode) {
  std::vector<RunLevel> events = {{63, 5}, {10, 2}, {0, 0}};
  std::array<std::int16_t, 64> block{};
  EXPECT_FALSE(run_length_decode(events, block));
}

TEST(Rle, SymbolMappingRoundTripsInRange) {
  for (int run = 0; run <= 31; ++run) {
    for (int mag = 1; mag <= 16; ++mag) {
      const RunLevel rl{static_cast<std::uint8_t>(run),
                        static_cast<std::int16_t>(mag)};
      const int sym = run_level_to_symbol(rl);
      ASSERT_NE(sym, kEscapeSymbol);
      ASSERT_NE(sym, kEobSymbol);
      const auto back = symbol_to_run_level(sym);
      EXPECT_EQ(back.run, rl.run);
      EXPECT_EQ(back.level, rl.level);
    }
  }
}

TEST(Rle, LargeValuesUseEscape) {
  EXPECT_EQ(run_level_to_symbol({0, 17}), kEscapeSymbol);
  EXPECT_EQ(run_level_to_symbol({32, 1}), kEscapeSymbol);
  EXPECT_EQ(run_level_to_symbol({0, 0}), kEobSymbol);
  EXPECT_EQ(run_level_to_symbol({5, -9}), run_level_to_symbol({5, 9}));
}

// ------------------------------------------------------------- rate buffer

TEST(RateBuffer, SteadyStateAtTargetRate) {
  RateBuffer buf(100000, 1000);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(buf.add_frame(1000));
  }
  EXPECT_EQ(buf.overflow_count(), 0u);
  EXPECT_EQ(buf.underflow_count(), 0u);
  EXPECT_NEAR(buf.fullness_ratio(), 0.5, 0.02);
}

TEST(RateBuffer, OverflowDetected) {
  RateBuffer buf(10000, 100);
  bool ok = true;
  for (int i = 0; i < 100; ++i) ok = buf.add_frame(1000) && ok;
  EXPECT_FALSE(ok);
  EXPECT_GT(buf.overflow_count(), 0u);
}

TEST(RateBuffer, UnderflowDetected) {
  RateBuffer buf(10000, 2000);
  bool ok = true;
  for (int i = 0; i < 10; ++i) ok = buf.add_frame(10) && ok;
  EXPECT_FALSE(ok);
  EXPECT_GT(buf.underflow_count(), 0u);
}

TEST(RateBuffer, QuantizerSuggestionMonotoneInFullness) {
  RateBuffer buf(100000, 10);
  int prev_q = buf.suggest_quantizer(2, 31);
  for (int i = 0; i < 20; ++i) {
    buf.add_frame(4000);
    const int q = buf.suggest_quantizer(2, 31);
    EXPECT_GE(q, prev_q);  // fuller buffer never suggests finer quantization
    prev_q = q;
  }
  EXPECT_EQ(prev_q, 31);
  EXPECT_GE(buf.suggest_quantizer(2, 31), 2);
}

}  // namespace
}  // namespace mmsoc::entropy
