// Tests for the video subsystem: frames, synthetic source, quantizer,
// motion estimation/compensation, VLC, the full Fig. 1 codec, metrics,
// and the transcoding study.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "common/mathutil.h"
#include "common/rng.h"
#include "video/codec.h"
#include "video/frame.h"
#include "video/metrics.h"
#include "video/motion.h"
#include "video/quantizer.h"
#include "video/source.h"
#include "video/transcode.h"
#include "video/vlc.h"
#include "video/wavelet_codec.h"

namespace mmsoc::video {
namespace {

using common::Rng;

// -------------------------------------------------------------------- frame

TEST(Plane, ClampedSampling) {
  Plane p(4, 4);
  p.set(0, 0, 10);
  p.set(3, 3, 99);
  EXPECT_EQ(p.at_clamped(-5, -5), 10);
  EXPECT_EQ(p.at_clamped(100, 100), 99);
  EXPECT_EQ(p.at_clamped(0, 100), p.at(0, 3));
}

TEST(Plane, RowsAreCacheLineAlignedAndPackedCopiesRoundTrip) {
  Plane p(66, 5, 7);
  EXPECT_GE(p.stride(), 66);
  EXPECT_EQ(p.stride() % 64, 0);
  Rng rng(5);
  for (int y = 0; y < p.height(); ++y) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p.row(y)) % 64, 0u);
    for (int x = 0; x < p.width(); ++x)
      p.set(x, y, static_cast<std::uint8_t>(rng.next_below(256)));
  }
  std::vector<std::uint8_t> packed(66 * 5);
  p.copy_packed_to(packed.data());
  Plane q(66, 5, /*fill=*/255);  // different padding fill than p
  q.copy_packed_from(packed.data(), packed.size());
  EXPECT_EQ(p, q);  // equality is over visible pixels only
}

TEST(Plane, MeanAndVariance) {
  Plane p(2, 2);
  p.set(0, 0, 0);
  p.set(1, 0, 100);
  p.set(0, 1, 100);
  p.set(1, 1, 200);
  EXPECT_DOUBLE_EQ(p.mean(), 100.0);
  EXPECT_DOUBLE_EQ(p.variance(), 5000.0);
}

TEST(Frame, BlackFrameProperties) {
  const Frame f = Frame::black(32, 32);
  EXPECT_DOUBLE_EQ(f.y().mean(), 16.0);       // studio black
  EXPECT_DOUBLE_EQ(f.mean_saturation(), 0.0); // neutral chroma
}

TEST(Frame, ChromaIsHalfResolution) {
  const Frame f(64, 48);
  EXPECT_EQ(f.cb().width(), 32);
  EXPECT_EQ(f.cb().height(), 24);
  EXPECT_EQ(f.cr().width(), 32);
}

// ------------------------------------------------------------------- source

TEST(SyntheticVideo, DeterministicForSeed) {
  const auto scene = scene_low_motion(99);
  const Frame a = SyntheticVideo::render(64, 64, scene, 5);
  const Frame b = SyntheticVideo::render(64, 64, scene, 5);
  EXPECT_EQ(a, b);
}

TEST(SyntheticVideo, FramesDifferOverTime) {
  const auto scene = scene_high_motion(1);
  const Frame a = SyntheticVideo::render(64, 64, scene, 0);
  const Frame b = SyntheticVideo::render(64, 64, scene, 10);
  EXPECT_NE(a, b);
  EXPECT_LT(psnr_luma(a, b), 40.0);  // genuinely different content
}

TEST(SyntheticVideo, ScriptLengthAndSeparators) {
  std::vector<SceneParams> scenes = {scene_flat(1), scene_flat(2)};
  scenes[0].frames = 5;
  scenes[1].frames = 7;
  SyntheticVideo src(32, 32, scenes, /*black_separator_frames=*/3);
  EXPECT_EQ(src.total_frames(), 15);
  int count = 0, black = 0;
  while (auto f = src.next()) {
    ++count;
    if (f->y().mean() < 17.0 && f->y().variance() < 1.0) ++black;
  }
  EXPECT_EQ(count, 15);
  EXPECT_EQ(black, 3);
  ASSERT_EQ(src.scene_starts().size(), 2u);
  EXPECT_EQ(src.scene_starts()[0], 0);
  EXPECT_EQ(src.scene_starts()[1], 8);  // 5 content + 3 separator
}

TEST(SyntheticVideo, SaturationControlsChroma) {
  auto colorful = scene_low_motion(5);
  colorful.saturation = 60.0;
  auto bw = scene_low_motion(5);
  bw.saturation = 0.0;
  const Frame fc = SyntheticVideo::render(64, 64, colorful, 0);
  const Frame fb = SyntheticVideo::render(64, 64, bw, 0);
  EXPECT_GT(fc.mean_saturation(), 10.0);
  EXPECT_LT(fb.mean_saturation(), 1.0);
}

// ---------------------------------------------------------------- quantizer

TEST(Quantizer, RoundTripErrorBoundedByHalfStep) {
  Rng rng(1);
  const Quantizer q(default_intra_matrix(), 8);
  std::array<float, 64> coeffs;
  for (auto& c : coeffs) c = static_cast<float>(rng.next_double_in(-500, 500));
  std::array<std::int16_t, 64> levels;
  std::array<float, 64> back;
  q.quantize(coeffs, levels);
  q.dequantize(levels, back);
  for (int i = 0; i < 64; ++i) {
    EXPECT_LE(std::abs(back[i] - coeffs[i]), q.step(i) / 2.0f + 1e-3f);
  }
}

TEST(Quantizer, HigherQscaleCoarserSteps) {
  const Quantizer fine(default_intra_matrix(), 2);
  const Quantizer coarse(default_intra_matrix(), 20);
  for (int i = 0; i < 64; ++i) EXPECT_GE(coarse.step(i), fine.step(i));
}

TEST(Quantizer, IntraMatrixPenalizesHighFrequencies) {
  const auto& m = default_intra_matrix();
  EXPECT_LT(m[0], m[63]);  // DC step < highest-frequency step
}

TEST(Quantizer, CoarseQuantizationZeroesHighFrequenciesFirst) {
  // The paper's §3 claim, directly: code a natural-statistics block at
  // increasing qscale and watch the high-frequency tail die first.
  Rng rng(2);
  std::array<float, 64> coeffs;
  for (int i = 0; i < 64; ++i) {
    // 1/f-style spectrum.
    coeffs[static_cast<std::size_t>(i)] =
        static_cast<float>(rng.next_double_in(-1, 1) * 800.0 / (1 + i));
  }
  const Quantizer coarse(default_intra_matrix(), 24);
  std::array<std::int16_t, 64> levels;
  coarse.quantize(coeffs, levels);
  int low_nonzero = 0, high_nonzero = 0;
  for (int i = 0; i < 8; ++i)
    if (levels[static_cast<std::size_t>(i)] != 0) ++low_nonzero;
  for (int i = 48; i < 64; ++i)
    if (levels[static_cast<std::size_t>(i)] != 0) ++high_nonzero;
  EXPECT_GT(low_nonzero, 0);
  EXPECT_EQ(high_nonzero, 0);
}

TEST(Quantizer, QscaleClampedToValidRange) {
  const Quantizer q0(default_intra_matrix(), 0);
  const Quantizer q99(default_intra_matrix(), 99);
  EXPECT_EQ(q0.qscale(), 1);
  EXPECT_EQ(q99.qscale(), 31);
}

// ------------------------------------------------------------------- motion

Plane translated_noise_plane(int w, int h, int dx, int dy, std::uint64_t seed) {
  // Build a large noise field and cut two windows displaced by (dx, dy).
  Rng rng(seed);
  const int margin = 32;
  std::vector<std::uint8_t> big(static_cast<std::size_t>(w + 2 * margin) *
                                (h + 2 * margin));
  for (auto& p : big) p = static_cast<std::uint8_t>(rng.next());
  Plane out(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      out.set(x, y, big[static_cast<std::size_t>(y + margin + dy) * (w + 2 * margin) +
                        (x + margin + dx)]);
  return out;
}

class FullSearchRecovery
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FullSearchRecovery, FindsExactTranslation) {
  // Property (§3): if the current frame is the reference translated by
  // (dx, dy), full-search ME must find exactly that vector with SAD 0.
  const auto [dx, dy] = GetParam();
  const Plane ref = translated_noise_plane(64, 64, 0, 0, 77);
  const Plane cur = translated_noise_plane(64, 64, dx, dy, 77);
  const auto field = estimate_frame(cur, ref, 8, SearchAlgorithm::kFullSearch);
  // Interior blocks (away from clamped borders) must find the exact vector.
  const auto& b = field.blocks[static_cast<std::size_t>(1) * field.blocks_x + 1];
  EXPECT_EQ(b.mv.dx, dx);
  EXPECT_EQ(b.mv.dy, dy);
  EXPECT_EQ(b.sad, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shifts, FullSearchRecovery,
    ::testing::Values(std::pair{0, 0}, std::pair{1, 0}, std::pair{-1, 2},
                      std::pair{3, -3}, std::pair{-7, 5}, std::pair{8, -8},
                      std::pair{-8, 8}, std::pair{4, 7}));

TEST(Motion, FastSearchesCheaperThanFull) {
  const auto scene = scene_high_motion(3);
  const Plane cur = SyntheticVideo::render(96, 96, scene, 4).y();
  const Plane ref = SyntheticVideo::render(96, 96, scene, 3).y();
  const auto full = estimate_frame(cur, ref, 8, SearchAlgorithm::kFullSearch);
  const auto tss = estimate_frame(cur, ref, 8, SearchAlgorithm::kThreeStep);
  const auto ds = estimate_frame(cur, ref, 8, SearchAlgorithm::kDiamond);
  EXPECT_LT(tss.total_evaluations(), full.total_evaluations() / 5);
  EXPECT_LT(ds.total_evaluations(), full.total_evaluations() / 5);
  // Fast searches are suboptimal but close: within 2x of optimal SAD.
  EXPECT_LE(full.total_sad(), tss.total_sad());
  EXPECT_LE(full.total_sad(), ds.total_sad());
  EXPECT_LT(tss.total_sad(), 2 * full.total_sad() + 1000);
  EXPECT_LT(ds.total_sad(), 2 * full.total_sad() + 1000);
}

TEST(Motion, CompensationReconstructsTranslation) {
  const Plane ref = translated_noise_plane(64, 64, 0, 0, 9);
  const Plane cur = translated_noise_plane(64, 64, 5, -3, 9);
  const auto field = estimate_frame(cur, ref, 8, SearchAlgorithm::kFullSearch);
  const Plane pred = compensate(ref, field);
  // Interior (non-border) pixels of prediction match the current frame.
  int exact = 0, total = 0;
  for (int y = 16; y < 48; ++y)
    for (int x = 16; x < 48; ++x) {
      ++total;
      if (pred.at(x, y) == cur.at(x, y)) ++exact;
    }
  EXPECT_EQ(exact, total);
}

TEST(Motion, SadZeroForIdenticalBlocks) {
  const Plane p = translated_noise_plane(32, 32, 0, 0, 10);
  EXPECT_EQ(sad16(p, p, 8, 8, 0, 0), 0u);
}

TEST(Motion, SearchRespectsRange) {
  const Plane ref = translated_noise_plane(64, 64, 0, 0, 11);
  const Plane cur = translated_noise_plane(64, 64, 0, 0, 12);
  for (const auto algo : {SearchAlgorithm::kFullSearch,
                          SearchAlgorithm::kThreeStep,
                          SearchAlgorithm::kDiamond}) {
    const auto field = estimate_frame(cur, ref, 4, algo);
    for (const auto& b : field.blocks) {
      EXPECT_LE(std::abs(b.mv.dx), 4);
      EXPECT_LE(std::abs(b.mv.dy), 4);
    }
  }
}

TEST(Motion, NoneAlgorithmReturnsZeroVector) {
  const Plane p = translated_noise_plane(32, 32, 0, 0, 13);
  const auto r = estimate_block(p, p, 16, 16, 8, SearchAlgorithm::kNone);
  EXPECT_EQ(r.mv, (MotionVector{0, 0}));
  EXPECT_EQ(r.evaluations, 1u);
}

TEST(Motion, ThreeStepReachesOddRangeCorners) {
  // Regression: the step schedule used to start at range/2 truncated, so
  // with range 5 the steps were 2,1 and no displacement beyond 3 was
  // reachable. The schedule must start at the smallest power of two with
  // 2*step - 1 >= range (4 for range 5: reach 4+2+1 = 7).
  Plane ref(64, 48), cur(64, 48);
  for (int y = 0; y < 48; ++y) {
    for (int x = 0; x < 64; ++x) {
      // Pure x-gradient; cur is ref translated right by 5, so the best
      // vector has dx == -5 (any dy — rows are identical) with SAD 0.
      ref.set(x, y, static_cast<std::uint8_t>(3 * x));
      cur.set(x, y, static_cast<std::uint8_t>(3 * (x >= 5 ? x - 5 : 0)));
    }
  }
  const auto r =
      estimate_block(cur, ref, 24, 16, /*range=*/5, SearchAlgorithm::kThreeStep);
  EXPECT_EQ(r.mv.dx, -5);
  EXPECT_EQ(r.sad, 0u);
}

TEST(Motion, DiamondRefinementKeepsFixedCenter) {
  // Regression: the small-diamond refinement used to move the center
  // mid-loop, so after accepting one improving neighbour the remaining
  // candidates were measured around the drifted point and the true argmin
  // of the four fixed neighbours could never be evaluated. Seed 265 was
  // chosen so the SAD landscape around the converged center (0,0) is:
  //   f(1,0) < f(0,-1) < f(0,0) <= f(d) for every large-diamond d,
  //   f(0,1), f(-1,0) >= f(1,0).
  // The drifting version accepts (0,-1) first and then never evaluates
  // (1,0); the fixed argmin returns (1,0).
  Rng rng(265);
  Plane ref(48, 48), cur(48, 48);
  for (int y = 0; y < 48; ++y)
    for (int x = 0; x < 48; ++x)
      ref.set(x, y, static_cast<std::uint8_t>(rng.next_below(256)));
  for (int y = 0; y < 48; ++y)
    for (int x = 0; x < 48; ++x) {
      const int v =
          ref.at_clamped(x + 1, y) + static_cast<int>(rng.next_in(-24, 24));
      cur.set(x, y, common::clamp_u8(v));
    }
  const int bx = 16, by = 16;
  const auto f = [&](int dx, int dy) { return sad16(cur, ref, bx, by, dx, dy); };
  // Validate the landscape preconditions the regression relies on.
  const auto f00 = f(0, 0);
  for (const auto& d :
       {MotionVector{0, -2}, MotionVector{1, -1}, MotionVector{2, 0},
        MotionVector{1, 1}, MotionVector{0, 2}, MotionVector{-1, 1},
        MotionVector{-2, 0}, MotionVector{-1, -1}}) {
    ASSERT_GE(f(d.dx, d.dy), f00);
  }
  ASSERT_LT(f(0, -1), f00);
  ASSERT_LT(f(1, 0), f(0, -1));
  ASSERT_GE(f(0, 1), f(1, 0));
  ASSERT_GE(f(-1, 0), f(1, 0));
  const auto r = estimate_block(cur, ref, bx, by, 8, SearchAlgorithm::kDiamond);
  EXPECT_EQ(r.mv, (MotionVector{1, 0}));
  EXPECT_EQ(r.sad, f(1, 0));
}

TEST(Motion, PartialEdgeMacroblocksAreEstimatedAndCompensated) {
  // Regression: non-multiple-of-16 frames used to lose their right/bottom
  // strips — block counts truncated, and compensate() left the uncovered
  // pixels at the Plane fill value. Block counts now round up and the
  // border blocks edge-clamp.
  const int w = 72, h = 40;  // 4.5 x 2.5 macroblocks
  Rng rng(31);
  Plane ref(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      ref.set(x, y, static_cast<std::uint8_t>(rng.next_below(256)));
  const Plane cur = ref;
  const auto field = estimate_frame(cur, ref, 4, SearchAlgorithm::kFullSearch);
  EXPECT_EQ(field.blocks_x, 5);
  EXPECT_EQ(field.blocks_y, 3);
  for (const auto& b : field.blocks) {
    EXPECT_EQ(b.mv, (MotionVector{0, 0}));
    EXPECT_EQ(b.sad, 0u);
  }
  // Identical frames + zero vectors: compensation must reproduce the
  // reference exactly, including the partial edge strips.
  EXPECT_EQ(compensate(ref, field), ref);
  // Chroma plane of a 72x40 4:2:0 frame: 36x20, also not block-aligned.
  Plane cref(w / 2, h / 2);
  for (int y = 0; y < h / 2; ++y)
    for (int x = 0; x < w / 2; ++x)
      cref.set(x, y, static_cast<std::uint8_t>(rng.next_below(256)));
  EXPECT_EQ(compensate_chroma(cref, field), cref);
}

// ---------------------------------------------------------------------- vlc

TEST(Vlc, BlockRoundTripRandomLevels) {
  Rng rng(20);
  for (int trial = 0; trial < 100; ++trial) {
    std::array<std::int16_t, 64> levels{};
    levels[0] = static_cast<std::int16_t>(rng.next_in(-200, 200));
    const int n = static_cast<int>(rng.next_below(25));
    for (int i = 0; i < n; ++i) {
      auto v = static_cast<std::int16_t>(rng.next_in(-40, 40));
      if (v == 0) v = 1;
      levels[1 + rng.next_below(63)] = v;
    }
    common::BitWriter w;
    std::int16_t dc_pred_enc = 0;
    encode_block(levels, true, dc_pred_enc, w);
    const auto bytes = w.take();
    common::BitReader r(bytes);
    std::array<std::int16_t, 64> decoded{};
    std::int16_t dc_pred_dec = 0;
    ASSERT_TRUE(decode_block(r, true, dc_pred_dec, decoded));
    EXPECT_EQ(decoded, levels) << "trial " << trial;
    EXPECT_EQ(dc_pred_enc, dc_pred_dec);
  }
}

TEST(Vlc, EscapePathForLargeLevels) {
  std::array<std::int16_t, 64> levels{};
  levels[0] = 0;
  levels[9] = 3000;   // |level| > 16 forces escape
  levels[17] = -2500;
  common::BitWriter w;
  std::int16_t dc = 0;
  encode_block(levels, false, dc, w);
  const auto bytes = w.take();
  common::BitReader r(bytes);
  std::array<std::int16_t, 64> decoded{};
  std::int16_t dc2 = 0;
  ASSERT_TRUE(decode_block(r, false, dc2, decoded));
  EXPECT_EQ(decoded, levels);
}

TEST(Vlc, DcPredictionChains) {
  common::BitWriter w;
  std::int16_t dc_pred = 0;
  std::array<std::int16_t, 64> a{}, b{};
  a[0] = 100;
  b[0] = 103;
  encode_block(a, true, dc_pred, w);
  encode_block(b, true, dc_pred, w);
  EXPECT_EQ(dc_pred, 103);
  const auto bytes = w.take();
  common::BitReader r(bytes);
  std::array<std::int16_t, 64> da{}, db{};
  std::int16_t dc2 = 0;
  ASSERT_TRUE(decode_block(r, true, dc2, da));
  ASSERT_TRUE(decode_block(r, true, dc2, db));
  EXPECT_EQ(da[0], 100);
  EXPECT_EQ(db[0], 103);
}

TEST(Vlc, TruncatedStreamFailsCleanly) {
  std::array<std::int16_t, 64> levels{};
  levels[5] = 7;
  common::BitWriter w;
  std::int16_t dc = 0;
  encode_block(levels, true, dc, w);
  auto bytes = w.take();
  bytes.resize(bytes.size() / 2);
  common::BitReader r(bytes);
  std::array<std::int16_t, 64> decoded{};
  std::int16_t dc2 = 0;
  // Either decodes garbage-free or fails; must not crash. Most truncations
  // fail; all leave the reader in a detectable state.
  const bool ok = decode_block(r, true, dc2, decoded);
  if (!ok) SUCCEED();
}

// -------------------------------------------------------------------- codec

EncoderConfig small_config() {
  EncoderConfig c;
  c.width = 64;
  c.height = 64;
  c.gop_size = 6;
  c.qscale = 6;
  c.search_range = 8;
  return c;
}

std::vector<Frame> test_sequence(int n, int w = 64, int h = 64) {
  std::vector<Frame> frames;
  const auto scene = scene_low_motion(42);
  for (int i = 0; i < n; ++i)
    frames.push_back(SyntheticVideo::render(w, h, scene, i));
  return frames;
}

TEST(Codec, IntraRoundTripQuality) {
  auto cfg = small_config();
  cfg.gop_size = 1;  // all intra
  cfg.qscale = 4;
  VideoEncoder enc(cfg);
  VideoDecoder dec;
  const auto frames = test_sequence(3);
  for (const auto& f : frames) {
    const auto encoded = enc.encode(f);
    EXPECT_EQ(encoded.type, FrameType::kIntra);
    auto decoded = dec.decode(encoded.bytes);
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_GT(psnr_luma(f, decoded.value()), 32.0);
  }
}

TEST(Codec, DecoderMatchesEncoderReconstructionExactly) {
  // The drift-free invariant of the Fig. 1 loop: the encoder's local
  // decode must be bit-exact with the real decoder, frame after frame.
  VideoEncoder enc(small_config());
  VideoDecoder dec;
  for (const auto& f : test_sequence(8)) {
    const auto encoded = enc.encode(f);
    auto decoded = dec.decode(encoded.bytes);
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(decoded.value(), enc.reconstructed());
  }
}

TEST(Codec, GopStructure) {
  VideoEncoder enc(small_config());  // gop_size = 6
  std::vector<FrameType> types;
  for (const auto& f : test_sequence(13)) types.push_back(enc.encode(f).type);
  for (int i = 0; i < 13; ++i) {
    EXPECT_EQ(types[static_cast<std::size_t>(i)],
              i % 6 == 0 ? FrameType::kIntra : FrameType::kPredicted)
        << "frame " << i;
  }
}

TEST(Codec, PFramesSmallerThanIFramesOnStaticContent) {
  VideoEncoder enc(small_config());
  // Integer pan + rich texture: intra coding must spend bits on the
  // texture every frame, while MC finds it in the reference for free.
  SceneParams scene = scene_high_detail(42);
  scene.pan_x = 2.0;  // exactly representable by integer motion vectors
  scene.noise_sigma = 0.5;
  std::vector<Frame> frames;
  for (int i = 0; i < 6; ++i)
    frames.push_back(SyntheticVideo::render(64, 64, scene, i));
  std::size_t i_bits = 0, p_bits = 0;
  int p_count = 0;
  for (const auto& f : frames) {
    const auto e = enc.encode(f);
    if (e.type == FrameType::kIntra) {
      i_bits = e.bytes.size() * 8;
    } else {
      p_bits += e.bytes.size() * 8;
      ++p_count;
    }
  }
  ASSERT_GT(p_count, 0);
  // §3: motion estimation/compensation reduce the number of bits. (The
  // stronger "greatly reduce" claim is exercised against a no-motion
  // encoder in MotionSearchReducesResidualBits.)
  const double p_mean = static_cast<double>(p_bits) / p_count;
  EXPECT_LT(p_mean, 0.8 * static_cast<double>(i_bits));
}

TEST(Codec, MotionSearchReducesResidualBits) {
  auto with_me = small_config();
  with_me.me_algo = SearchAlgorithm::kFullSearch;
  auto without_me = small_config();
  without_me.me_algo = SearchAlgorithm::kNone;
  // Strong panning makes ME matter.
  std::vector<Frame> frames;
  auto scene = scene_high_motion(7);
  for (int i = 0; i < 6; ++i)
    frames.push_back(SyntheticVideo::render(64, 64, scene, i));

  auto total_p_bits = [&](const EncoderConfig& cfg) {
    VideoEncoder enc(cfg);
    std::size_t bits = 0;
    for (const auto& f : frames) {
      const auto e = enc.encode(f);
      if (e.type == FrameType::kPredicted) bits += e.bytes.size() * 8;
    }
    return bits;
  };
  EXPECT_LT(total_p_bits(with_me), total_p_bits(without_me));
}

TEST(Codec, RequestIntraForcesIFrame) {
  VideoEncoder enc(small_config());
  const auto frames = test_sequence(4);
  enc.encode(frames[0]);
  enc.encode(frames[1]);
  enc.request_intra();
  EXPECT_EQ(enc.encode(frames[2]).type, FrameType::kIntra);
  EXPECT_EQ(enc.encode(frames[3]).type, FrameType::kPredicted);
}

TEST(Codec, RateControlTracksBudget) {
  auto cfg = small_config();
  cfg.rate_control = true;
  cfg.bitrate_bps = 400000.0;
  cfg.fps = 30.0;
  VideoEncoder enc(cfg);
  std::size_t total_bits = 0;
  const int n = 30;
  std::vector<Frame> frames;
  const auto scene = scene_high_detail(8);
  for (int i = 0; i < n; ++i)
    frames.push_back(SyntheticVideo::render(64, 64, scene, i));
  for (const auto& f : frames) total_bits += enc.encode(f).bytes.size() * 8;
  const double achieved_bps = static_cast<double>(total_bits) / (n / 30.0);
  // Rate control is coarse but must land within 2x of target.
  EXPECT_LT(achieved_bps, cfg.bitrate_bps * 2.0);
  EXPECT_GT(achieved_bps, cfg.bitrate_bps * 0.2);
}

TEST(Codec, HigherQscaleFewerBitsLowerQuality) {
  auto fine = small_config();
  fine.qscale = 2;
  fine.gop_size = 1;
  auto coarse = small_config();
  coarse.qscale = 24;
  coarse.gop_size = 1;
  const auto frames = test_sequence(2);

  auto run = [&](const EncoderConfig& cfg) {
    VideoEncoder enc(cfg);
    VideoDecoder dec;
    std::size_t bits = 0;
    double psnr_sum = 0;
    for (const auto& f : frames) {
      const auto e = enc.encode(f);
      bits += e.bytes.size() * 8;
      auto d = dec.decode(e.bytes);
      psnr_sum += psnr_luma(f, d.value());
    }
    return std::pair{bits, psnr_sum / static_cast<double>(frames.size())};
  };
  const auto [fine_bits, fine_psnr] = run(fine);
  const auto [coarse_bits, coarse_psnr] = run(coarse);
  EXPECT_GT(fine_bits, coarse_bits);
  EXPECT_GT(fine_psnr, coarse_psnr + 3.0);
}

TEST(Codec, StageOpsPopulated) {
  VideoEncoder enc(small_config());
  const auto frames = test_sequence(2);
  const auto e0 = enc.encode(frames[0]);
  EXPECT_GT(e0.ops.dct_blocks, 0u);
  EXPECT_GT(e0.ops.idct_blocks, 0u);
  EXPECT_GT(e0.ops.vlc_symbols, 0u);
  EXPECT_EQ(e0.ops.me_sad_ops, 0u);  // intra frame: no motion search
  const auto e1 = enc.encode(frames[1]);
  EXPECT_GT(e1.ops.me_sad_ops, 0u);
  EXPECT_GT(e1.ops.mc_pixels, 0u);
}

TEST(Codec, PFrameWithoutReferenceFails) {
  VideoEncoder enc(small_config());
  VideoDecoder dec;
  const auto frames = test_sequence(2);
  enc.encode(frames[0]);                      // I
  const auto p = enc.encode(frames[1]);       // P
  ASSERT_EQ(p.type, FrameType::kPredicted);
  const auto r = dec.decode(p.bytes);         // decoder never saw the I frame
  EXPECT_FALSE(r.is_ok());
}

TEST(Codec, TruncatedStreamFailsGracefully) {
  VideoEncoder enc(small_config());
  const auto frames = test_sequence(1);
  auto e = enc.encode(frames[0]);
  e.bytes.resize(e.bytes.size() / 3);
  VideoDecoder dec;
  EXPECT_FALSE(dec.decode(e.bytes).is_ok());
}

TEST(Codec, EmptyStreamFails) {
  VideoDecoder dec;
  EXPECT_FALSE(dec.decode({}).is_ok());
}

// ------------------------------------------------------------------ metrics

TEST(Metrics, PsnrIdenticalIsCapped) {
  const Frame f = SyntheticVideo::render(32, 32, scene_flat(1), 0);
  EXPECT_DOUBLE_EQ(psnr_luma(f, f), 99.0);
}

TEST(Metrics, PsnrDecreasesWithNoise) {
  const Frame f = SyntheticVideo::render(32, 32, scene_flat(2), 0);
  Rng rng(3);
  Frame noisy1 = f, noisy2 = f;
  for (int y = 0; y < noisy1.y().height(); ++y)
    for (auto& p : noisy1.y().row_span(y))
      p = common::clamp_u8(p + static_cast<int>(rng.next_in(-2, 2)));
  for (int y = 0; y < noisy2.y().height(); ++y)
    for (auto& p : noisy2.y().row_span(y))
      p = common::clamp_u8(p + static_cast<int>(rng.next_in(-20, 20)));
  EXPECT_GT(psnr_luma(f, noisy1), psnr_luma(f, noisy2));
}

TEST(Metrics, SsimIdenticalIsOne) {
  const Frame f = SyntheticVideo::render(32, 32, scene_high_detail(4), 0);
  EXPECT_NEAR(global_ssim(f.y(), f.y()), 1.0, 1e-9);
}

TEST(Metrics, MseOfKnownDifference) {
  Plane a(4, 4, 100), b(4, 4, 110);
  EXPECT_DOUBLE_EQ(mse(a, b), 100.0);
}

// ------------------------------------------------------------ wavelet codec

TEST(WaveletCodec, LosslessAtUnitStep) {
  // qstep 1 over the reversible 5/3 transform: bit-exact reconstruction.
  const auto frame = SyntheticVideo::render(64, 64, scene_high_detail(71), 0);
  const WaveletCodecConfig cfg{3, 1};
  auto encoded = wavelet_encode_plane(frame.y(), cfg);
  ASSERT_TRUE(encoded.is_ok());
  auto decoded = wavelet_decode_plane(encoded.value());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), frame.y());
}

class WaveletQstepSweep : public ::testing::TestWithParam<int> {};

TEST_P(WaveletQstepSweep, RoundTripQualityReasonable) {
  const auto frame = SyntheticVideo::render(64, 64, scene_high_detail(72), 0);
  const WaveletCodecConfig cfg{3, GetParam()};
  auto encoded = wavelet_encode_plane(frame.y(), cfg);
  ASSERT_TRUE(encoded.is_ok());
  auto decoded = wavelet_decode_plane(encoded.value());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_GT(psnr(frame.y(), decoded.value()), 26.0) << "qstep " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Steps, WaveletQstepSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(WaveletCodec, RateDistortionMonotone) {
  const auto frame = SyntheticVideo::render(64, 64, scene_high_detail(73), 0);
  std::size_t prev_bytes = static_cast<std::size_t>(-1);
  double prev_psnr = 1e9;
  for (const int qstep : {1, 4, 16, 64}) {
    auto encoded = wavelet_encode_plane(frame.y(), WaveletCodecConfig{3, qstep});
    ASSERT_TRUE(encoded.is_ok());
    auto decoded = wavelet_decode_plane(encoded.value());
    ASSERT_TRUE(decoded.is_ok());
    const double p = psnr(frame.y(), decoded.value());
    EXPECT_LT(encoded.value().size(), prev_bytes);
    EXPECT_LE(p, prev_psnr + 1e-9);
    prev_bytes = encoded.value().size();
    prev_psnr = p;
  }
}

TEST(WaveletCodec, LosslessBeatsRawSize) {
  // Even lossless, the transform + zero-run coding compresses natural
  // content below 8 bits/pixel.
  const auto frame = SyntheticVideo::render(64, 64, scene_low_motion(74), 0);
  auto encoded = wavelet_encode_plane(frame.y(), WaveletCodecConfig{3, 1});
  ASSERT_TRUE(encoded.is_ok());
  EXPECT_LT(encoded.value().size(), 64u * 64u);
}

TEST(WaveletCodec, RejectsBadConfigs) {
  const Plane p(48, 48);  // not divisible by 2^3... 48/8 = 6, actually fine
  EXPECT_TRUE(wavelet_encode_plane(p, WaveletCodecConfig{3, 1}).is_ok());
  const Plane odd(50, 50);  // 50 % 8 != 0
  EXPECT_FALSE(wavelet_encode_plane(odd, WaveletCodecConfig{3, 1}).is_ok());
  EXPECT_FALSE(wavelet_encode_plane(p, WaveletCodecConfig{0, 1}).is_ok());
  EXPECT_FALSE(wavelet_encode_plane(p, WaveletCodecConfig{3, 0}).is_ok());
}

TEST(WaveletCodec, CorruptStreamRejected) {
  const auto frame = SyntheticVideo::render(32, 32, scene_flat(75), 0);
  auto encoded = wavelet_encode_plane(frame.y(), WaveletCodecConfig{2, 2});
  ASSERT_TRUE(encoded.is_ok());
  auto bytes = encoded.value();
  bytes[0] ^= 0xFF;  // magic
  EXPECT_FALSE(wavelet_decode_plane(bytes).is_ok());
  EXPECT_FALSE(wavelet_decode_plane({}).is_ok());
  auto truncated = encoded.value();
  truncated.resize(truncated.size() / 4);
  // Truncation may decode fewer coefficients or fail; must not crash, and
  // if it fails it reports corrupt data.
  const auto r = wavelet_decode_plane(truncated);
  if (!r.is_ok()) {
    EXPECT_EQ(r.status().code(), common::StatusCode::kCorruptData);
  }
}

// ---------------------------------------------------------------- transcode

TEST(Transcode, GenerationalQualityLoss) {
  // §3: "each generation of transcoding reduces image quality."
  const auto frames = test_sequence(4);
  auto cfg_a = small_config();
  cfg_a.qscale = 6;
  auto cfg_b = small_config();
  cfg_b.qscale = 6;
  cfg_b.alternate_standard = true;
  const auto points = generation_study(frames, 5, cfg_a, cfg_b);
  ASSERT_EQ(points.size(), 5u);
  // Quality after 5 generations is strictly worse than after 1.
  EXPECT_LT(points[4].psnr_db, points[0].psnr_db - 0.2);
  // And the first generation is itself lossy.
  EXPECT_LT(points[0].psnr_db, 99.0);
  // Degradation is (weakly) monotone within tolerance.
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].psnr_db, points[i - 1].psnr_db + 0.3);
  }
}

TEST(Transcode, SameStandardIsNearlyIdempotent) {
  // Re-encoding with the identical quantizer mostly re-makes the same
  // decisions: generation 2 loses far less than generation 1.
  const auto frames = test_sequence(3);
  const auto cfg = small_config();
  const auto points = generation_study(frames, 3, cfg, cfg);
  ASSERT_EQ(points.size(), 3u);
  const double loss1 = 99.0 - points[0].psnr_db;
  const double loss2 = points[0].psnr_db - points[1].psnr_db;
  EXPECT_LT(loss2, loss1 * 0.5);
}

}  // namespace
}  // namespace mmsoc::video
