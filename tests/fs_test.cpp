// Tests for the embedded filesystem (§7): block device, FAT volume
// invariants, fragmentation behaviour, foreign-tree import.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/rng.h"
#include "fs/block_device.h"
#include "fs/fat.h"
#include "fs/import.h"

namespace mmsoc::fs {
namespace {

using common::Rng;

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next());
  return v;
}

// ------------------------------------------------------------ block device

TEST(BlockDevice, ReadBackWhatWasWritten) {
  BlockDevice dev(16, 256);
  const auto data = pattern_bytes(256, 1);
  ASSERT_TRUE(dev.write(3, data).is_ok());
  std::vector<std::uint8_t> out(256);
  ASSERT_TRUE(dev.read(3, out).is_ok());
  EXPECT_EQ(out, data);
}

TEST(BlockDevice, BoundsChecked) {
  BlockDevice dev(4, 128);
  std::vector<std::uint8_t> buf(128);
  EXPECT_FALSE(dev.read(4, buf).is_ok());
  EXPECT_FALSE(dev.write(100, buf).is_ok());
  std::vector<std::uint8_t> wrong(64);
  EXPECT_FALSE(dev.read(0, wrong).is_ok());
}

TEST(BlockDevice, SeekAccounting) {
  BlockDevice dev(100, 128);
  std::vector<std::uint8_t> buf(128);
  dev.read(0, buf);   // head 0 -> 0
  dev.read(50, buf);  // +50
  dev.read(10, buf);  // +40
  EXPECT_EQ(dev.seek_distance(), 90u);
  EXPECT_EQ(dev.reads(), 3u);
  dev.reset_stats();
  EXPECT_EQ(dev.seek_distance(), 0u);
}

TEST(BlockDevice, SequentialCheaperThanRandom) {
  BlockDevice dev(1000, 128);
  std::vector<std::uint8_t> buf(128);
  for (std::uint32_t b = 0; b < 100; ++b) dev.read(b, buf);
  const double sequential = dev.modeled_time_us();
  dev.reset_stats();
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    dev.read(static_cast<std::uint32_t>(rng.next_below(1000)), buf);
  }
  const double random = dev.modeled_time_us();
  EXPECT_GT(random, 2.0 * sequential);
}

// -------------------------------------------------------------- path utils

TEST(SplitPath, Basics) {
  auto p = split_path("/a/b/c.mp3");
  ASSERT_TRUE(p.is_ok());
  EXPECT_EQ(p.value(), (std::vector<std::string>{"a", "b", "c.mp3"}));
  EXPECT_TRUE(split_path("/").is_ok());
  EXPECT_TRUE(split_path("/").value().empty());
}

TEST(SplitPath, Rejections) {
  EXPECT_FALSE(split_path("relative/path").is_ok());
  EXPECT_FALSE(split_path("").is_ok());
  EXPECT_FALSE(split_path("/a//b").is_ok());
  EXPECT_FALSE(split_path("/" + std::string(100, 'x')).is_ok());
}

// ------------------------------------------------------------- fat volume

struct FatFixture : ::testing::Test {
  BlockDevice dev{512, 256};
  std::optional<FatVolume> vol;

  void SetUp() override {
    auto v = FatVolume::format(dev);
    ASSERT_TRUE(v.is_ok()) << v.status().to_text();
    vol.emplace(std::move(v).value());
  }
};

TEST_F(FatFixture, WriteReadRoundTrip) {
  const auto data = pattern_bytes(1000, 3);
  ASSERT_TRUE(vol->write_file("/hello.bin", data).is_ok());
  auto back = vol->read_file("/hello.bin");
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), data);
}

TEST_F(FatFixture, EmptyFile) {
  ASSERT_TRUE(vol->write_file("/empty", {}).is_ok());
  auto back = vol->read_file("/empty");
  ASSERT_TRUE(back.is_ok());
  EXPECT_TRUE(back.value().empty());
  auto st = vol->stat("/empty");
  ASSERT_TRUE(st.is_ok());
  EXPECT_EQ(st.value().size, 0u);
}

TEST_F(FatFixture, LargeFileSpanningManyBlocks) {
  // §7: "large file sizes" — bigger than any single block by far.
  const auto data = pattern_bytes(40000, 4);  // 157 blocks of 256
  ASSERT_TRUE(vol->write_file("/big.dat", data).is_ok());
  auto back = vol->read_file("/big.dat");
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), data);
}

TEST_F(FatFixture, OverwriteReplacesContents) {
  ASSERT_TRUE(vol->write_file("/f", pattern_bytes(500, 5)).is_ok());
  const auto second = pattern_bytes(200, 6);
  ASSERT_TRUE(vol->write_file("/f", second).is_ok());
  auto back = vol->read_file("/f");
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), second);
  // Only one directory entry remains.
  auto entries = vol->list("/");
  ASSERT_TRUE(entries.is_ok());
  EXPECT_EQ(entries.value().size(), 1u);
}

TEST_F(FatFixture, AppendExtendsFile) {
  const auto a = pattern_bytes(300, 7);
  const auto b = pattern_bytes(450, 8);
  ASSERT_TRUE(vol->write_file("/log", a).is_ok());
  ASSERT_TRUE(vol->append_file("/log", b).is_ok());
  auto back = vol->read_file("/log");
  ASSERT_TRUE(back.is_ok());
  std::vector<std::uint8_t> expected = a;
  expected.insert(expected.end(), b.begin(), b.end());
  EXPECT_EQ(back.value(), expected);
}

TEST_F(FatFixture, AppendToMissingFileCreatesIt) {
  const auto data = pattern_bytes(100, 9);
  ASSERT_TRUE(vol->append_file("/new", data).is_ok());
  EXPECT_EQ(vol->read_file("/new").value(), data);
}

TEST_F(FatFixture, DirectoriesNestAndList) {
  ASSERT_TRUE(vol->mkdir("/music").is_ok());
  ASSERT_TRUE(vol->mkdir("/music/rock").is_ok());
  ASSERT_TRUE(vol->write_file("/music/rock/song.mp3", pattern_bytes(100, 10)).is_ok());
  ASSERT_TRUE(vol->write_file("/music/readme.txt", pattern_bytes(10, 11)).is_ok());

  auto root = vol->list("/");
  ASSERT_TRUE(root.is_ok());
  ASSERT_EQ(root.value().size(), 1u);
  EXPECT_EQ(root.value()[0].name, "music");
  EXPECT_TRUE(root.value()[0].is_directory);

  auto music = vol->list("/music");
  ASSERT_TRUE(music.is_ok());
  EXPECT_EQ(music.value().size(), 2u);

  auto rock = vol->list("/music/rock");
  ASSERT_TRUE(rock.is_ok());
  ASSERT_EQ(rock.value().size(), 1u);
  EXPECT_EQ(rock.value()[0].name, "song.mp3");
  EXPECT_EQ(rock.value()[0].size, 100u);
}

TEST_F(FatFixture, ManyEntriesGrowDirectoryChain) {
  // 256-byte blocks hold 4 entries; 20 files force chain growth.
  for (int i = 0; i < 20; ++i) {
    const std::string path = "/file_" + std::to_string(i);
    ASSERT_TRUE(vol->write_file(path, pattern_bytes(50, 100 + static_cast<std::uint64_t>(i))).is_ok());
  }
  auto entries = vol->list("/");
  ASSERT_TRUE(entries.is_ok());
  EXPECT_EQ(entries.value().size(), 20u);
  // All retrievable.
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(vol->read_file("/file_" + std::to_string(i)).is_ok());
  }
}

TEST_F(FatFixture, RemoveFreesBlocks) {
  const auto before = vol->free_blocks();
  ASSERT_TRUE(vol->write_file("/f", pattern_bytes(5000, 12)).is_ok());
  EXPECT_LT(vol->free_blocks(), before);
  ASSERT_TRUE(vol->remove("/f").is_ok());
  EXPECT_EQ(vol->free_blocks(), before);
  EXPECT_FALSE(vol->read_file("/f").is_ok());
}

TEST_F(FatFixture, RemoveNonEmptyDirectoryFails) {
  ASSERT_TRUE(vol->mkdir("/d").is_ok());
  ASSERT_TRUE(vol->write_file("/d/f", pattern_bytes(10, 13)).is_ok());
  EXPECT_FALSE(vol->remove("/d").is_ok());
  ASSERT_TRUE(vol->remove("/d/f").is_ok());
  EXPECT_TRUE(vol->remove("/d").is_ok());
}

TEST_F(FatFixture, MkdirDuplicateFails) {
  ASSERT_TRUE(vol->mkdir("/d").is_ok());
  const auto st = vol->mkdir("/d");
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), common::StatusCode::kAlreadyExists);
}

TEST_F(FatFixture, MissingPathsFail) {
  EXPECT_FALSE(vol->read_file("/nope").is_ok());
  EXPECT_FALSE(vol->stat("/nope").is_ok());
  EXPECT_FALSE(vol->list("/nope").is_ok());
  EXPECT_FALSE(vol->write_file("/nodir/f", pattern_bytes(5, 14)).is_ok());
}

TEST_F(FatFixture, VolumeFullReported) {
  // 512 blocks of 256 B minus metadata: ~500 data blocks = 128 KB.
  const auto big = pattern_bytes(200000, 15);
  const auto st = vol->write_file("/toobig", big);
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), common::StatusCode::kResourceExhausted);
  // Failed write must not leak blocks: a small file still fits.
  EXPECT_TRUE(vol->write_file("/small", pattern_bytes(1000, 16)).is_ok());
}

TEST_F(FatFixture, MountSeesExistingData) {
  const auto data = pattern_bytes(777, 17);
  ASSERT_TRUE(vol->mkdir("/persist").is_ok());
  ASSERT_TRUE(vol->write_file("/persist/f.bin", data).is_ok());
  // Re-mount the same device (player power cycle).
  auto again = FatVolume::mount(dev);
  ASSERT_TRUE(again.is_ok());
  auto back = again.value().read_file("/persist/f.bin");
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), data);
}

TEST_F(FatFixture, MountRejectsUnformattedDevice) {
  BlockDevice blank(64, 256);
  EXPECT_FALSE(FatVolume::mount(blank).is_ok());
}

TEST_F(FatFixture, DeleteCreateCyclesFragmentFiles) {
  // The §7 non-sequential allocation experiment in miniature: run the
  // volume near capacity, then churn — replacement files no longer fit in
  // single holes and their chains scatter across the disk.
  Rng rng(18);
  std::vector<std::string> live;
  // Prefill ~80%: 40 files x 10 blocks on a ~500-data-block volume.
  for (int i = 0; i < 40; ++i) {
    const std::string path = "/fill_" + std::to_string(i);
    ASSERT_TRUE(vol->write_file(path, pattern_bytes(2500, 100 + static_cast<std::uint64_t>(i))).is_ok());
    live.push_back(path);
  }
  // Churn: delete a small file, try to create a larger one.
  for (int round = 0; round < 120; ++round) {
    if (!live.empty()) {
      const auto idx = rng.next_below(live.size());
      ASSERT_TRUE(vol->remove(live[idx]).is_ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    const std::string path = "/churn_" + std::to_string(round);
    const auto st = vol->write_file(
        path, pattern_bytes(3000 + rng.next_below(4000), 200 + static_cast<std::uint64_t>(round)));
    if (st.is_ok()) live.push_back(path);
  }
  ASSERT_FALSE(live.empty());
  double max_frag = 0.0, sum_frag = 0.0;
  for (const auto& path : live) {
    auto f = vol->fragmentation(path);
    ASSERT_TRUE(f.is_ok());
    max_frag = std::max(max_frag, f.value());
    sum_frag += f.value();
  }
  EXPECT_GT(max_frag, 0.2);  // churn produced genuinely fragmented chains
  EXPECT_GT(sum_frag / static_cast<double>(live.size()), 0.02);
  // And every file still reads back correctly despite fragmentation.
  for (const auto& path : live) {
    EXPECT_TRUE(vol->read_file(path).is_ok());
  }
}

TEST_F(FatFixture, FreshFileIsSequential) {
  ASSERT_TRUE(vol->write_file("/seq", pattern_bytes(4000, 19)).is_ok());
  auto f = vol->fragmentation("/seq");
  ASSERT_TRUE(f.is_ok());
  EXPECT_DOUBLE_EQ(f.value(), 0.0);
}

// ------------------------------------------------------------------ import

TEST(Fat, RangedReadMatchesFullReadAndTouchesFewerBlocks) {
  BlockDevice dev(256, 128);
  auto vol = FatVolume::format(dev);
  ASSERT_TRUE(vol.is_ok());
  std::vector<std::uint8_t> data(3000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  ASSERT_TRUE(vol.value().write_file("/stream", data).is_ok());

  auto slice = [&](std::uint64_t off, std::uint64_t len) {
    auto r = vol.value().read_file_range("/stream", off, len);
    EXPECT_TRUE(r.is_ok()) << r.status().to_text();
    return r.value();
  };
  // Interior, block-straddling, and EOF-clipped ranges all match the
  // corresponding slice of a full read.
  const auto full = vol.value().read_file("/stream");
  ASSERT_TRUE(full.is_ok());
  for (const auto& [off, len] :
       {std::pair<std::uint64_t, std::uint64_t>{0, 100},
        {100, 128},
        {117, 300},
        {2900, 500},   // clipped to the last 100 bytes
        {0, 100000}}) {  // clipped to the whole file
    const auto got = slice(off, len);
    const auto want_len =
        std::min<std::uint64_t>(len, data.size() > off ? data.size() - off : 0);
    ASSERT_EQ(got.size(), want_len) << off << "+" << len;
    EXPECT_TRUE(std::equal(got.begin(), got.end(),
                           full.value().begin() +
                               static_cast<std::ptrdiff_t>(off)));
  }
  EXPECT_TRUE(slice(3000, 10).empty());
  EXPECT_TRUE(slice(9999, 1).empty());
  EXPECT_TRUE(slice(5, 0).empty());
  // A one-block range must not pay the whole chain in device reads — the
  // property that makes the streaming BlockFileSource's unit reads cheap.
  dev.reset_stats();
  (void)slice(0, 64);
  const auto small = dev.reads();
  dev.reset_stats();
  (void)vol.value().read_file("/stream");
  EXPECT_LT(small, dev.reads());
  // Errors still surface.
  EXPECT_FALSE(vol.value().read_file_range("/nope", 0, 1).is_ok());
  ASSERT_TRUE(vol.value().mkdir("/d").is_ok());
  EXPECT_FALSE(vol.value().read_file_range("/d", 0, 1).is_ok());
}

TEST(ForeignImport, ManifestMatchesVolumeContents) {
  BlockDevice dev(4096, 256);
  auto v = FatVolume::format(dev);
  ASSERT_TRUE(v.is_ok());
  auto& vol = v.value();

  ForeignTreeSpec spec;
  spec.num_dirs = 4;
  spec.files_per_dir = 5;
  spec.seed = 42;
  auto manifest = import_foreign_tree(vol, spec);
  ASSERT_TRUE(manifest.is_ok()) << manifest.status().to_text();
  EXPECT_EQ(manifest.value().size(), 20u);

  // Every manifest file reads back with the right size and checksum —
  // the CD/MP3 player handling "a wide variety of directory structures,
  // file names, etc."
  for (const auto& f : manifest.value()) {
    auto data = vol.read_file(f.path);
    ASSERT_TRUE(data.is_ok()) << f.path;
    EXPECT_EQ(data.value().size(), f.size);
    EXPECT_EQ(common::crc32(data.value()), f.crc32);
  }
}

TEST(ForeignImport, DeterministicForSeed) {
  const auto run = [](std::uint64_t seed) {
    BlockDevice dev(4096, 256);
    auto v = FatVolume::format(dev);
    ForeignTreeSpec spec;
    spec.seed = seed;
    auto m = import_foreign_tree(v.value(), spec);
    std::vector<std::string> paths;
    for (const auto& f : m.value()) paths.push_back(f.path);
    return paths;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

}  // namespace
}  // namespace mmsoc::fs
