// Tests for the DSP kernels: DCT, FFT, wavelets, filters, windows.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <complex>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/crc32.h"
#include "common/mathutil.h"
#include "common/rng.h"
#include "dsp/dct.h"
#include "dsp/dispatch.h"
#include "dsp/fft.h"
#include "dsp/filter.h"
#include "dsp/wavelet.h"
#include "dsp/window.h"
#include "video/codec.h"
#include "video/source.h"

namespace mmsoc::dsp {
namespace {

using common::Rng;

Block random_block(Rng& rng, float lo = -128.0f, float hi = 127.0f) {
  Block b;
  for (auto& v : b)
    v = static_cast<float>(rng.next_double_in(lo, hi));
  return b;
}

// ---------------------------------------------------------------------- DCT

TEST(Dct, ForwardInverseIdentity) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const Block in = random_block(rng);
    Block coeffs, back;
    dct2d(in, coeffs);
    idct2d(coeffs, back);
    for (int i = 0; i < 64; ++i) EXPECT_NEAR(back[i], in[i], 1e-3f);
  }
}

TEST(Dct, SeparableMatchesDirect) {
  // The paper's claim: "a 2-D DCT can be computed from two 1-D DCTs".
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const Block in = random_block(rng);
    Block direct, separable;
    dct2d_direct(in, direct);
    dct2d(in, separable);
    for (int i = 0; i < 64; ++i) EXPECT_NEAR(direct[i], separable[i], 1e-2f);
  }
}

TEST(Dct, InverseDirectMatchesInverseSeparable) {
  Rng rng(3);
  const Block in = random_block(rng);
  Block a, b;
  idct2d_direct(in, a);
  idct2d(in, b);
  for (int i = 0; i < 64; ++i) EXPECT_NEAR(a[i], b[i], 1e-2f);
}

TEST(Dct, ConstantBlockHasOnlyDc) {
  Block in;
  in.fill(50.0f);
  Block coeffs;
  dct2d(in, coeffs);
  EXPECT_NEAR(coeffs[0], 50.0f * 8.0f, 1e-2f);  // DC = N * mean for orthonormal
  for (int i = 1; i < 64; ++i) EXPECT_NEAR(coeffs[i], 0.0f, 1e-3f);
}

TEST(Dct, ParsevalEnergyPreserved) {
  // Orthonormal transform preserves the sum of squares.
  Rng rng(4);
  const Block in = random_block(rng);
  Block coeffs;
  dct2d(in, coeffs);
  double e_in = 0.0, e_out = 0.0;
  for (int i = 0; i < 64; ++i) {
    e_in += static_cast<double>(in[i]) * in[i];
    e_out += static_cast<double>(coeffs[i]) * coeffs[i];
  }
  EXPECT_NEAR(e_out / e_in, 1.0, 1e-4);
}

TEST(Dct, Linearity) {
  Rng rng(5);
  const Block a = random_block(rng);
  const Block b = random_block(rng);
  Block sum;
  for (int i = 0; i < 64; ++i) sum[i] = 2.0f * a[i] + 3.0f * b[i];
  Block ca, cb, csum;
  dct2d(a, ca);
  dct2d(b, cb);
  dct2d(sum, csum);
  for (int i = 0; i < 64; ++i)
    EXPECT_NEAR(csum[i], 2.0f * ca[i] + 3.0f * cb[i], 1e-2f);
}

TEST(Dct, FixedPointCloseToFloat) {
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    BlockI16 in;
    Block inf;
    for (int i = 0; i < 64; ++i) {
      in[i] = static_cast<std::int16_t>(rng.next_in(-255, 255));
      inf[i] = static_cast<float>(in[i]);
    }
    BlockI16 qcoeffs;
    Block fcoeffs;
    dct2d_q15(in, qcoeffs);
    dct2d(inf, fcoeffs);
    for (int i = 0; i < 64; ++i) {
      EXPECT_NEAR(static_cast<float>(qcoeffs[i]), fcoeffs[i], 2.0f)
          << "trial " << trial << " i=" << i;
    }
  }
}

TEST(Dct, FixedPointRoundTripBounded) {
  Rng rng(7);
  BlockI16 in, coeffs, back;
  for (int i = 0; i < 64; ++i)
    in[i] = static_cast<std::int16_t>(rng.next_in(-255, 255));
  dct2d_q15(in, coeffs);
  idct2d_q15(coeffs, back);
  for (int i = 0; i < 64; ++i) EXPECT_NEAR(back[i], in[i], 3);
}

TEST(Dct, EnergyCompactionOnSmoothBlock) {
  // A smooth gradient compacts almost all energy into few coefficients —
  // the property quantization exploits (§3).
  Block in;
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x)
      in[static_cast<std::size_t>(y) * 8 + x] = static_cast<float>(8 * x + 3 * y);
  Block coeffs;
  dct2d(in, coeffs);
  EXPECT_GT(energy_compaction(coeffs, 10), 0.99);
  // And compaction is monotone in k.
  double prev = 0.0;
  for (int k = 1; k <= 64; k *= 2) {
    const double c = energy_compaction(coeffs, k);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(energy_compaction(coeffs, 64), 1.0, 1e-9);
}

// ---------------------------------------------------------------------- FFT

TEST(Fft, RoundTrip) {
  Rng rng(8);
  std::vector<Complex> data(256);
  for (auto& c : data)
    c = Complex(rng.next_double_in(-1, 1), rng.next_double_in(-1, 1));
  const auto original = data;
  fft(data);
  ifft(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-9);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-9);
  }
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<Complex> data(64, Complex{});
  data[0] = Complex(1.0, 0.0);
  fft(data);
  for (const auto& c : data) {
    EXPECT_NEAR(c.real(), 1.0, 1e-9);
    EXPECT_NEAR(c.imag(), 0.0, 1e-9);
  }
}

TEST(Fft, PureToneLandsInCorrectBin) {
  const std::size_t n = 512;
  const int bin = 37;
  std::vector<double> samples(n);
  for (std::size_t i = 0; i < n; ++i)
    samples[i] = std::cos(2.0 * common::kPi * bin * static_cast<double>(i) / n);
  const auto power = power_spectrum(samples, n);
  // Bin 37 dominates everything else by orders of magnitude.
  std::size_t peak = 0;
  for (std::size_t i = 1; i < power.size(); ++i)
    if (power[i] > power[peak]) peak = i;
  EXPECT_EQ(peak, static_cast<std::size_t>(bin));
  EXPECT_GT(power[bin], 1e6 * power[bin + 5]);
}

TEST(Fft, ParsevalHolds) {
  Rng rng(9);
  const std::size_t n = 256;
  std::vector<Complex> data(n);
  double time_energy = 0.0;
  for (auto& c : data) {
    c = Complex(rng.next_double_in(-1, 1), 0.0);
    time_energy += std::norm(c);
  }
  fft(data);
  double freq_energy = 0.0;
  for (const auto& c : data) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-6);
}

TEST(Fft, NonPowerOfTwoIsNoOp) {
  std::vector<Complex> data(100, Complex(1.0, 0.0));
  const auto original = data;
  fft(data);
  EXPECT_EQ(data, original);
}

// ------------------------------------------------------------------ wavelet

class Dwt53RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(Dwt53RoundTrip, ExactIntegerReversibility) {
  // The 5/3 transform is the *reversible* JPEG2000 filter: bit-exact.
  Rng rng(10);
  std::vector<std::int32_t> data(static_cast<std::size_t>(GetParam()));
  for (auto& v : data) v = static_cast<std::int32_t>(rng.next_in(-1000, 1000));
  const auto original = data;
  dwt53_forward(data);
  dwt53_inverse(data);
  EXPECT_EQ(data, original);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Dwt53RoundTrip,
                         ::testing::Values(2, 4, 8, 16, 64, 256, 1024));

TEST(Dwt97, RoundTripWithinEpsilon) {
  Rng rng(11);
  std::vector<float> data(512);
  for (auto& v : data) v = static_cast<float>(rng.next_double_in(-100, 100));
  const auto original = data;
  dwt97_forward(data);
  dwt97_inverse(data);
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_NEAR(data[i], original[i], 1e-3f);
}

TEST(Dwt53, SmoothSignalCompactsIntoLowBand) {
  std::vector<std::int32_t> data(256);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::int32_t>(
        100.0 * std::sin(2.0 * common::kPi * static_cast<double>(i) / 256.0));
  dwt53_forward(data);
  double low = 0.0, high = 0.0;
  for (std::size_t i = 0; i < 128; ++i) low += std::abs(data[i]);
  for (std::size_t i = 128; i < 256; ++i) high += std::abs(data[i]);
  EXPECT_GT(low, 20.0 * high);
}

TEST(Dwt2d, Integer53RoundTrip) {
  Rng rng(12);
  const int w = 64, h = 32;
  std::vector<std::int32_t> img(static_cast<std::size_t>(w) * h);
  for (auto& v : img) v = static_cast<std::int32_t>(rng.next_in(0, 255));
  const auto original = img;
  dwt53_2d_forward(img, w, h, 3);
  dwt53_2d_inverse(img, w, h, 3);
  EXPECT_EQ(img, original);
}

TEST(Dwt2d, Float97RoundTrip) {
  Rng rng(13);
  const int w = 32, h = 32;
  std::vector<float> img(static_cast<std::size_t>(w) * h);
  for (auto& v : img) v = static_cast<float>(rng.next_double_in(0, 255));
  const auto original = img;
  dwt97_2d_forward(img, w, h, 2);
  dwt97_2d_inverse(img, w, h, 2);
  for (std::size_t i = 0; i < img.size(); ++i)
    EXPECT_NEAR(img[i], original[i], 1e-2f);
}

TEST(Dwt2d, LlEnergyFractionHighForSmoothImage) {
  const int w = 64, h = 64;
  std::vector<float> img(static_cast<std::size_t>(w) * h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      img[static_cast<std::size_t>(y) * w + x] =
          static_cast<float>(100.0 + 50.0 * std::sin(x * 0.1) * std::cos(y * 0.08));
  EXPECT_GT(ll_energy_fraction(img, w, h, 2), 0.95);
}

// ------------------------------------------------------------------ filters

TEST(Fir, DesignHasUnitDcGain) {
  const auto taps = design_lowpass_fir(63, 0.1);
  double sum = 0.0;
  for (const auto t : taps) sum += t;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Fir, LowpassPassesLowAndStopsHigh) {
  FirFilter f(design_lowpass_fir(127, 0.1));
  // Measure steady-state amplitude of a low and a high tone.
  auto amplitude_at = [&](double freq) {
    f.reset();
    double peak = 0.0;
    for (int i = 0; i < 2000; ++i) {
      const double y = f.process(std::sin(2.0 * common::kPi * freq * i));
      if (i > 500) peak = std::max(peak, std::abs(y));
    }
    return peak;
  };
  EXPECT_GT(amplitude_at(0.02), 0.9);
  EXPECT_LT(amplitude_at(0.3), 0.01);
}

TEST(Fir, ImpulseResponseEqualsTaps) {
  const std::vector<double> taps = {0.5, 0.25, 0.125};
  FirFilter f(taps);
  EXPECT_DOUBLE_EQ(f.process(1.0), 0.5);
  EXPECT_DOUBLE_EQ(f.process(0.0), 0.25);
  EXPECT_DOUBLE_EQ(f.process(0.0), 0.125);
  EXPECT_DOUBLE_EQ(f.process(0.0), 0.0);
}

TEST(Biquad, LowpassAttenuatesHighFrequencies) {
  Biquad f(Biquad::lowpass(0.05, 0.707));
  auto amplitude_at = [&](double freq) {
    f.reset();
    double peak = 0.0;
    for (int i = 0; i < 4000; ++i) {
      const double y = f.process(std::sin(2.0 * common::kPi * freq * i));
      if (i > 1000) peak = std::max(peak, std::abs(y));
    }
    return peak;
  };
  EXPECT_GT(amplitude_at(0.005), 0.95);
  EXPECT_LT(amplitude_at(0.4), 0.02);
}

TEST(Biquad, NotchRemovesTargetFrequency) {
  Biquad f(Biquad::notch(0.1, 5.0));
  double peak = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const double y = f.process(std::sin(2.0 * common::kPi * 0.1 * i));
    if (i > 2000) peak = std::max(peak, std::abs(y));
  }
  EXPECT_LT(peak, 0.05);
}

TEST(Biquad, StableUnderWhiteNoise) {
  Rng rng(14);
  Biquad f(Biquad::lowpass(0.2, 0.707));
  double max_out = 0.0;
  for (int i = 0; i < 100000; ++i) {
    max_out = std::max(max_out, std::abs(f.process(rng.next_double_in(-1, 1))));
  }
  EXPECT_LT(max_out, 10.0);  // bounded output = stable
}

TEST(BiquadQ15, TracksFloatBiquad) {
  const auto coeffs = Biquad::lowpass(0.1, 0.707);
  Biquad ref(coeffs);
  BiquadQ15 fix(coeffs);
  Rng rng(15);
  double max_err = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.next_double_in(-1000.0, 1000.0);
    const double yr = ref.process(x);
    const double yf = fix.process(common::Q15::from_double(x)).to_double();
    max_err = std::max(max_err, std::abs(yr - yf));
  }
  EXPECT_LT(max_err, 1.0);  // < 0.1% of the +/-1000 signal range
}

// ------------------------------------------------------------------ windows

TEST(Window, HannEndpointsZeroCenterOne) {
  const auto w = make_window(WindowKind::kHann, 65);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);
}

TEST(Window, AllKindsBoundedByOne) {
  for (const auto kind : {WindowKind::kRect, WindowKind::kHann,
                          WindowKind::kHamming, WindowKind::kBlackman,
                          WindowKind::kSine}) {
    const auto w = make_window(kind, 128);
    for (const auto v : w) {
      EXPECT_GE(v, -1e-12);
      EXPECT_LE(v, 1.0 + 1e-12);
    }
  }
}

TEST(Window, DegenerateSizes) {
  EXPECT_EQ(make_window(WindowKind::kHann, 0).size(), 0u);
  EXPECT_EQ(make_window(WindowKind::kHann, 1).size(), 1u);
}

// ------------------------------------------------ SIMD kernel dispatch
//
// Equivalence fuzzing: every kernel variant compiled into this binary and
// runnable on this CPU must be byte-identical to the scalar reference, on
// aligned and deliberately misaligned operands alike. On a machine without
// AVX2 (or with -DMMSOC_SIMD=OFF) the variant list is simply shorter; the
// scalar-vs-scalar case always runs.

/// Restores the process-wide active kernel table on scope exit.
class ScopedSimdLevel {
 public:
  ScopedSimdLevel() : saved_(active_simd_level()) {}
  ~ScopedSimdLevel() { set_simd_level(saved_); }

 private:
  SimdLevel saved_;
};

std::vector<const KernelTable*> runnable_tables() {
  std::vector<const KernelTable*> out;
  for (const auto level : compiled_levels()) {
    if (!cpu_supports(level)) continue;
    out.push_back(kernel_table(level));
  }
  return out;
}

TEST(SimdDispatch, ScalarAlwaysRegisteredAndSwitchable) {
  ScopedSimdLevel restore;
  ASSERT_NE(kernel_table(SimdLevel::kScalar), nullptr);
  EXPECT_TRUE(cpu_supports(SimdLevel::kScalar));
  EXPECT_TRUE(set_simd_level(SimdLevel::kScalar));
  EXPECT_EQ(active_simd_level(), SimdLevel::kScalar);
  for (const auto level : compiled_levels()) {
    ASSERT_NE(kernel_table(level), nullptr);
    EXPECT_EQ(kernel_table(level)->level, level);
    SimdLevel parsed;
    ASSERT_TRUE(parse_simd_level(simd_level_name(level), parsed));
    EXPECT_EQ(parsed, level);
  }
  SimdLevel parsed;
  EXPECT_FALSE(parse_simd_level("mmx", parsed));
}

TEST(SimdDispatch, Sad16MatchesScalarOnRandomStridesAndOffsets) {
  const auto scalar = kernel_table(SimdLevel::kScalar);
  Rng rng(0x5ad16);
  for (int iter = 0; iter < 200; ++iter) {
    // Random strides >= 16 and byte offsets 0..7 exercise every load
    // alignment the Plane fast path and the clamped fallback can produce.
    const auto a_stride = static_cast<std::ptrdiff_t>(rng.next_in(16, 96));
    const auto b_stride = static_cast<std::ptrdiff_t>(rng.next_in(16, 96));
    const auto a_off = static_cast<std::size_t>(rng.next_below(8));
    const auto b_off = static_cast<std::size_t>(rng.next_below(8));
    std::vector<std::uint8_t> a(a_off + 16 * a_stride + 16);
    std::vector<std::uint8_t> b(b_off + 16 * b_stride + 16);
    for (auto& v : a) v = static_cast<std::uint8_t>(rng.next_below(256));
    for (auto& v : b) v = static_cast<std::uint8_t>(rng.next_below(256));
    const auto want =
        scalar->sad16(a.data() + a_off, a_stride, b.data() + b_off, b_stride);
    for (const auto* table : runnable_tables()) {
      EXPECT_EQ(table->sad16(a.data() + a_off, a_stride, b.data() + b_off,
                             b_stride),
                want)
          << simd_level_name(table->level) << " iter " << iter;
    }
  }
}

TEST(SimdDispatch, FloatDctVariantsBitExact) {
  const auto scalar = kernel_table(SimdLevel::kScalar);
  Rng rng(0xdc7f32);
  // Slot 1 of an alignas(32) array is the worst-case misaligned pointer.
  alignas(32) float in_buf[65], want[64], got[64];
  for (int iter = 0; iter < 300; ++iter) {
    const bool misalign = (iter % 2) != 0;
    float* in = in_buf + (misalign ? 1 : 0);
    for (int i = 0; i < 64; ++i)
      in[i] = static_cast<float>(rng.next_double_in(-512.0, 512.0));
    for (const bool inverse : {false, true}) {
      auto fn = [&](const KernelTable* t) {
        return inverse ? t->idct8x8_f32 : t->fdct8x8_f32;
      };
      fn(scalar)(in, want);
      for (const auto* table : runnable_tables()) {
        fn(table)(in, got);
        EXPECT_EQ(std::memcmp(got, want, sizeof(want)), 0)
            << simd_level_name(table->level) << (inverse ? " idct" : " fdct")
            << " iter " << iter << (misalign ? " misaligned" : " aligned");
        // The contract allows in-place operation.
        alignas(32) float inplace[64];
        std::memcpy(inplace, in, sizeof(inplace));
        fn(table)(inplace, inplace);
        EXPECT_EQ(std::memcmp(inplace, want, sizeof(want)), 0)
            << simd_level_name(table->level) << " in-place iter " << iter;
      }
    }
  }
}

TEST(SimdDispatch, Q15DctVariantsBitExactAcrossFullInt16Range) {
  const auto scalar = kernel_table(SimdLevel::kScalar);
  Rng rng(0xdc7415);
  alignas(32) std::int16_t in_buf[65], want[64], got[64];
  for (int iter = 0; iter < 300; ++iter) {
    std::int16_t* in = in_buf + (iter % 2);
    if (iter == 0) {
      for (int i = 0; i < 64; ++i) in[i] = 32767;  // row-pass overflow probe
    } else if (iter == 1) {
      for (int i = 0; i < 64; ++i) in[i] = -32768;
    } else {
      for (int i = 0; i < 64; ++i)
        in[i] = static_cast<std::int16_t>(rng.next_in(-32768, 32767));
    }
    for (const bool inverse : {false, true}) {
      auto fn = [&](const KernelTable* t) {
        return inverse ? t->idct8x8_q15 : t->fdct8x8_q15;
      };
      fn(scalar)(in, want);
      for (const auto* table : runnable_tables()) {
        fn(table)(in, got);
        EXPECT_EQ(std::memcmp(got, want, sizeof(want)), 0)
            << simd_level_name(table->level) << (inverse ? " idct" : " fdct")
            << " iter " << iter;
      }
    }
  }
}

TEST(SimdDispatch, Quantize64ExactIncludingHalfwayTies) {
  const auto scalar = kernel_table(SimdLevel::kScalar);
  Rng rng(0x9a47);
  alignas(32) float coeffs_buf[65], steps_buf[65];
  alignas(32) std::int16_t want[64], got[64];
  for (int iter = 0; iter < 300; ++iter) {
    float* coeffs = coeffs_buf + (iter % 2);
    float* steps = steps_buf + (iter % 2);
    if (iter % 5 == 0) {
      // Exact .5 ties: odd/2.0 must round away from zero like lroundf,
      // not to even like the raw cvtps instruction.
      for (int i = 0; i < 64; ++i) {
        const auto odd = 2 * rng.next_in(-900, 900) + 1;
        steps[i] = 2.0f;
        coeffs[i] = static_cast<float>(odd);
      }
    } else {
      for (int i = 0; i < 64; ++i) {
        coeffs[i] = static_cast<float>(rng.next_double_in(-4096.0, 4096.0));
        steps[i] = static_cast<float>(rng.next_double_in(0.25, 64.0));
      }
    }
    scalar->quantize64(coeffs, steps, want);
    for (int i = 0; i < 64; ++i) {
      const auto l = std::lroundf(coeffs[i] / steps[i]);
      ASSERT_EQ(want[i], static_cast<std::int16_t>(
                             std::clamp(l, -32768l, 32767l)))
          << "scalar reference drifted from lroundf at " << i;
    }
    for (const auto* table : runnable_tables()) {
      table->quantize64(coeffs, steps, got);
      EXPECT_EQ(std::memcmp(got, want, sizeof(want)), 0)
          << simd_level_name(table->level) << " iter " << iter;
    }
  }
}

TEST(SimdDispatch, Dequantize64BitExact) {
  const auto scalar = kernel_table(SimdLevel::kScalar);
  Rng rng(0xde9a47);
  alignas(32) std::int16_t levels_buf[65];
  alignas(32) float steps_buf[65], want[64], got[64];
  for (int iter = 0; iter < 200; ++iter) {
    std::int16_t* levels = levels_buf + (iter % 2);
    float* steps = steps_buf + (iter % 2);
    for (int i = 0; i < 64; ++i) {
      levels[i] = static_cast<std::int16_t>(rng.next_in(-32768, 32767));
      steps[i] = static_cast<float>(rng.next_double_in(0.25, 64.0));
    }
    scalar->dequantize64(levels, steps, want);
    for (const auto* table : runnable_tables()) {
      table->dequantize64(levels, steps, got);
      EXPECT_EQ(std::memcmp(got, want, sizeof(want)), 0)
          << simd_level_name(table->level) << " iter " << iter;
    }
  }
}

TEST(SimdDispatch, FilterbankMacsBitExact) {
  const auto scalar = kernel_table(SimdLevel::kScalar);
  Rng rng(0xfb32);
  alignas(32) double x_buf[65], bands_buf[33];
  alignas(32) double want64[64], got64[64], want32[32], got32[32];
  for (int iter = 0; iter < 200; ++iter) {
    double* x = x_buf + (iter % 2);
    double* bands = bands_buf + (iter % 2);
    for (int i = 0; i < 64; ++i) x[i] = rng.next_double_in(-1.0, 1.0);
    for (int i = 0; i < 32; ++i) bands[i] = rng.next_double_in(-4.0, 4.0);
    scalar->fb_analyze(x, want32);
    scalar->fb_synth(bands, want64);
    for (const auto* table : runnable_tables()) {
      table->fb_analyze(x, got32);
      EXPECT_EQ(std::memcmp(got32, want32, sizeof(want32)), 0)
          << simd_level_name(table->level) << " analyze iter " << iter;
      table->fb_synth(bands, got64);
      EXPECT_EQ(std::memcmp(got64, want64, sizeof(want64)), 0)
          << simd_level_name(table->level) << " synth iter " << iter;
    }
  }
}

// FATE-style stream check: the full Fig.1 encoder (motion estimation, DCT,
// quantizer, entropy coder, rate control) must emit a byte-identical
// bitstream at every SIMD level — the strongest end-to-end witness that
// dispatch never changes numerics.
TEST(SimdDispatch, EncodedBitstreamCrcIdenticalAcrossLevels) {
  ScopedSimdLevel restore;
  constexpr int kWidth = 64, kHeight = 48, kFrames = 8;
  const auto scene = video::scene_high_motion(77);
  const auto encode_crc = [&] {
    video::EncoderConfig cfg;
    cfg.width = kWidth;
    cfg.height = kHeight;
    cfg.gop_size = 4;  // I and P frames both in the stream
    cfg.rate_control = true;
    cfg.me_algo = video::SearchAlgorithm::kDiamond;
    video::VideoEncoder enc(cfg);
    common::Crc32 crc;
    for (int i = 0; i < kFrames; ++i) {
      const auto frame =
          video::SyntheticVideo::render(kWidth, kHeight, scene, i);
      const auto coded = enc.encode(frame);
      crc.update(coded.bytes);
    }
    return crc.value();
  };
  ASSERT_TRUE(set_simd_level(SimdLevel::kScalar));
  const auto want = encode_crc();
  for (const auto level : compiled_levels()) {
    if (!cpu_supports(level)) continue;
    ASSERT_TRUE(set_simd_level(level));
    EXPECT_EQ(encode_crc(), want)
        << "bitstream diverged at level " << simd_level_name(level);
  }
}

}  // namespace
}  // namespace mmsoc::dsp
