// Tests for DRM (§6): cipher, rights model, license store integrity,
// authority transactions, and playback enforcement.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "drm/authority.h"
#include "drm/player.h"
#include "drm/rights.h"
#include "drm/xtea.h"

namespace mmsoc::drm {
namespace {

using common::Rng;

const XteaKey kTestKey = {0x01234567, 0x89ABCDEF, 0xFEDCBA98, 0x76543210};
const XteaKey kMasterKey = {0xA5A5A5A5, 0x5A5A5A5A, 0xDEADBEEF, 0xCAFEBABE};

// --------------------------------------------------------------------- xtea

TEST(Xtea, BlockRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    std::uint32_t v[2] = {static_cast<std::uint32_t>(rng.next()),
                          static_cast<std::uint32_t>(rng.next())};
    const std::uint32_t orig[2] = {v[0], v[1]};
    xtea_encrypt_block(kTestKey, v);
    EXPECT_TRUE(v[0] != orig[0] || v[1] != orig[1]);
    xtea_decrypt_block(kTestKey, v);
    EXPECT_EQ(v[0], orig[0]);
    EXPECT_EQ(v[1], orig[1]);
  }
}

TEST(Xtea, DifferentKeysDifferentCiphertext) {
  std::uint32_t a[2] = {1, 2}, b[2] = {1, 2};
  XteaKey other = kTestKey;
  other[0] ^= 1;
  xtea_encrypt_block(kTestKey, a);
  xtea_encrypt_block(other, b);
  EXPECT_TRUE(a[0] != b[0] || a[1] != b[1]);
}

TEST(XteaCtr, CryptTwiceIsIdentity) {
  Rng rng(2);
  std::vector<std::uint8_t> data(1000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  const auto original = data;
  XteaCtr enc(kTestKey, 42);
  enc.crypt(data);
  EXPECT_NE(data, original);
  XteaCtr dec(kTestKey, 42);
  dec.crypt(data);
  EXPECT_EQ(data, original);
}

TEST(XteaCtr, SeekableKeystream) {
  std::vector<std::uint8_t> whole(256, 0);
  XteaCtr a(kTestKey, 7);
  a.crypt(whole);  // whole keystream

  std::vector<std::uint8_t> tail(156, 0);
  XteaCtr b(kTestKey, 7);
  b.seek(100);
  b.crypt(tail);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i], whole[100 + i]);
  }
}

TEST(XteaCtr, DifferentNoncesDifferentStreams) {
  std::vector<std::uint8_t> a(64, 0), b(64, 0);
  XteaCtr ca(kTestKey, 1), cb(kTestKey, 2);
  ca.crypt(a);
  cb.crypt(b);
  EXPECT_NE(a, b);
}

TEST(CbcMac, DetectsModification) {
  Rng rng(3);
  std::vector<std::uint8_t> msg(100);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
  const auto tag = xtea_cbc_mac(kTestKey, msg);
  msg[50] ^= 1;
  EXPECT_NE(xtea_cbc_mac(kTestKey, msg), tag);
}

TEST(CbcMac, KeyDependent) {
  const std::vector<std::uint8_t> msg = {1, 2, 3, 4, 5};
  XteaKey other = kTestKey;
  other[3] ^= 0x80000000u;
  EXPECT_NE(xtea_cbc_mac(kTestKey, msg), xtea_cbc_mac(other, msg));
}

TEST(DeriveKey, DistinctLabelsDistinctKeys) {
  const auto a = derive_key(kMasterKey, 1);
  const auto b = derive_key(kMasterKey, 2);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, derive_key(kMasterKey, 1));  // deterministic
}

// ------------------------------------------------------------------- rights

TEST(Rights, DeviceAuthorization) {
  Rights r;
  r.devices = {10, 20};
  EXPECT_TRUE(r.device_authorized(10));
  EXPECT_TRUE(r.device_authorized(20));
  EXPECT_FALSE(r.device_authorized(30));
}

TEST(Rights, TimeWindow) {
  Rights r;
  r.not_before = 100;
  r.not_after = 200;
  EXPECT_FALSE(r.within_window(99));
  EXPECT_TRUE(r.within_window(100));
  EXPECT_TRUE(r.within_window(150));
  EXPECT_TRUE(r.within_window(200));
  EXPECT_FALSE(r.within_window(201));
  Rights unbounded;
  EXPECT_TRUE(unbounded.within_window(-1000000));
  EXPECT_TRUE(unbounded.within_window(1000000));
}

TEST(LicenseStore, UpsertFindRemove) {
  LicenseStore store(kTestKey);
  Rights r;
  r.title = 5;
  r.plays_remaining = 3;
  store.upsert(r);
  ASSERT_NE(store.find(5), nullptr);
  EXPECT_EQ(store.find(5)->plays_remaining, 3u);
  r.plays_remaining = 7;
  store.upsert(r);  // replaces
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.find(5)->plays_remaining, 7u);
  EXPECT_TRUE(store.remove(5));
  EXPECT_EQ(store.find(5), nullptr);
  EXPECT_FALSE(store.remove(5));
}

TEST(LicenseStore, SerializeParseRoundTrip) {
  LicenseStore store(kTestKey);
  Rights r1;
  r1.title = 1;
  r1.plays_remaining = 5;
  r1.not_before = 1000;
  r1.not_after = 2000;
  r1.devices = {11, 22, 33};
  r1.analog_output_only = true;
  store.upsert(r1);
  Rights r2;
  r2.title = 2;
  r2.devices = {11};
  store.upsert(r2);

  const auto bytes = store.serialize();
  auto parsed = LicenseStore::parse(kTestKey, bytes);
  ASSERT_TRUE(parsed.is_ok());
  const auto* p1 = parsed.value().find(1);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p1->plays_remaining, 5u);
  EXPECT_EQ(p1->not_before, 1000);
  EXPECT_EQ(p1->not_after, 2000);
  EXPECT_EQ(p1->devices, (std::vector<DeviceId>{11, 22, 33}));
  EXPECT_TRUE(p1->analog_output_only);
  ASSERT_NE(parsed.value().find(2), nullptr);
}

TEST(LicenseStore, TamperingDetected) {
  // The offline attack the MAC exists for: bump your own play count.
  LicenseStore store(kTestKey);
  Rights r;
  r.title = 9;
  r.plays_remaining = 1;
  r.devices = {1};
  store.upsert(r);
  auto bytes = store.serialize();
  bytes[4] ^= 0xFF;  // flip bits inside the serialized play count region
  auto parsed = LicenseStore::parse(kTestKey, bytes);
  EXPECT_FALSE(parsed.is_ok());
  EXPECT_EQ(parsed.status().code(), common::StatusCode::kPermissionDenied);
}

TEST(LicenseStore, WrongKeyRejected) {
  LicenseStore store(kTestKey);
  Rights r;
  r.title = 9;
  store.upsert(r);
  const auto bytes = store.serialize();
  EXPECT_FALSE(LicenseStore::parse(kMasterKey, bytes).is_ok());
}

// ---------------------------------------------------------------- authority

struct AuthorityFixture : ::testing::Test {
  LicenseAuthority authority{kMasterKey};
  XteaKey content_key{};
  XteaKey device_key{};

  void SetUp() override {
    content_key = authority.register_title(100);
    device_key = authority.register_device(1);
    Rights r;
    r.title = 100;
    r.plays_remaining = 3;
    r.devices = {1};
    authority.grant(r);
  }
};

TEST_F(AuthorityFixture, LicenseIssuedForGrantedDevice) {
  auto lic = authority.request_license(100, 1, 50);
  ASSERT_TRUE(lic.is_ok());
  EXPECT_EQ(lic.value().rights.title, 100u);
  auto key = LicenseAuthority::unwrap_content_key(lic.value(), device_key);
  ASSERT_TRUE(key.is_ok());
  EXPECT_EQ(key.value(), content_key);
}

TEST_F(AuthorityFixture, UnknownTitleRejected) {
  EXPECT_FALSE(authority.request_license(999, 1, 50).is_ok());
}

TEST_F(AuthorityFixture, UnknownDeviceRejected) {
  EXPECT_FALSE(authority.request_license(100, 77, 50).is_ok());
}

TEST_F(AuthorityFixture, UngrantedDeviceRejected) {
  authority.register_device(2);
  EXPECT_FALSE(authority.request_license(100, 2, 50).is_ok());
}

TEST_F(AuthorityFixture, WrongDeviceKeyYieldsWrongContentKey) {
  auto lic = authority.request_license(100, 1, 50);
  ASSERT_TRUE(lic.is_ok());
  XteaKey wrong = device_key;
  wrong[0] ^= 1;
  auto key = LicenseAuthority::unwrap_content_key(lic.value(), wrong);
  ASSERT_TRUE(key.is_ok());       // unwrap always "succeeds"...
  EXPECT_NE(key.value(), content_key);  // ...but yields garbage
}

// ----------------------------------------------------------------- playback

struct PlayerFixture : ::testing::Test {
  LicenseAuthority authority{kMasterKey};
  XteaKey content_key{};
  XteaKey device_key{};
  std::vector<std::uint8_t> plaintext;
  std::vector<std::uint8_t> encrypted;

  void SetUp() override {
    content_key = authority.register_title(7);
    device_key = authority.register_device(1);
    plaintext.resize(256);
    for (std::size_t i = 0; i < plaintext.size(); ++i) {
      plaintext[i] = static_cast<std::uint8_t>(i * 13 + 5);
    }
    encrypted = plaintext;
    XteaCtr ctr(content_key, 0);
    ctr.crypt(encrypted);
  }

  Rights basic_rights(std::uint32_t plays = kUnlimitedPlays) {
    Rights r;
    r.title = 7;
    r.plays_remaining = plays;
    r.devices = {1};
    return r;
  }

  PlaybackDevice online_device() {
    return PlaybackDevice(1, device_key, [this](TitleId t, Timestamp now) {
      return authority.request_license(t, 1, now);
    });
  }
};

TEST_F(PlayerFixture, OnlinePlaybackDecryptsContent) {
  authority.grant(basic_rights());
  auto dev = online_device();
  const auto res = dev.play(7, 100, encrypted, OutputPath::kDigital);
  ASSERT_TRUE(res.allowed());
  EXPECT_TRUE(res.used_online_authorization);
  EXPECT_EQ(res.content, plaintext);
}

TEST_F(PlayerFixture, SecondPlayUsesCachedLicense) {
  authority.grant(basic_rights());
  auto dev = online_device();
  dev.play(7, 100, encrypted, OutputPath::kDigital);
  const auto res = dev.play(7, 101, encrypted, OutputPath::kDigital);
  ASSERT_TRUE(res.allowed());
  EXPECT_FALSE(res.used_online_authorization);
  EXPECT_EQ(authority.requests_served(), 1u);
}

TEST_F(PlayerFixture, OfflineDeviceWithInstalledLicense) {
  authority.grant(basic_rights());
  auto lic = authority.request_license(7, 1, 100);
  ASSERT_TRUE(lic.is_ok());
  PlaybackDevice dev(1, device_key);  // no online connection
  dev.install_license(lic.value());
  const auto res = dev.play(7, 100, encrypted, OutputPath::kDigital);
  ASSERT_TRUE(res.allowed());
  EXPECT_EQ(res.content, plaintext);
}

TEST_F(PlayerFixture, OfflineDeviceWithoutLicenseDenied) {
  PlaybackDevice dev(1, device_key);
  const auto res = dev.play(7, 100, encrypted, OutputPath::kAnalog);
  EXPECT_FALSE(res.allowed());
  EXPECT_EQ(res.denial, DenialReason::kNoLicense);
}

TEST_F(PlayerFixture, PlayCountEnforced) {
  authority.grant(basic_rights(2));
  auto dev = online_device();
  EXPECT_TRUE(dev.play(7, 1, encrypted, OutputPath::kAnalog).allowed());
  EXPECT_TRUE(dev.play(7, 2, encrypted, OutputPath::kAnalog).allowed());
  const auto third = dev.play(7, 3, encrypted, OutputPath::kAnalog);
  EXPECT_FALSE(third.allowed());
  EXPECT_EQ(third.denial, DenialReason::kPlayCountExhausted);
}

TEST_F(PlayerFixture, TimeWindowEnforced) {
  auto r = basic_rights();
  r.not_before = 100;
  r.not_after = 200;
  authority.grant(r);
  auto lic = authority.request_license(7, 1, 150);
  ASSERT_TRUE(lic.is_ok());
  PlaybackDevice dev(1, device_key);
  dev.install_license(lic.value());
  EXPECT_EQ(dev.play(7, 50, encrypted, OutputPath::kAnalog).denial,
            DenialReason::kOutsideTimeWindow);
  EXPECT_TRUE(dev.play(7, 150, encrypted, OutputPath::kAnalog).allowed());
  EXPECT_EQ(dev.play(7, 300, encrypted, OutputPath::kAnalog).denial,
            DenialReason::kOutsideTimeWindow);
}

TEST_F(PlayerFixture, MultiDeviceRight) {
  auto r = basic_rights();
  r.devices = {1, 2};
  authority.grant(r);
  const auto dk2 = authority.register_device(2);
  auto lic1 = authority.request_license(7, 1, 10);
  auto lic2 = authority.request_license(7, 2, 10);
  ASSERT_TRUE(lic1.is_ok());
  ASSERT_TRUE(lic2.is_ok());
  PlaybackDevice d1(1, device_key), d2(2, dk2);
  d1.install_license(lic1.value());
  d2.install_license(lic2.value());
  EXPECT_TRUE(d1.play(7, 10, encrypted, OutputPath::kAnalog).allowed());
  EXPECT_TRUE(d2.play(7, 10, encrypted, OutputPath::kAnalog).allowed());
}

TEST_F(PlayerFixture, UnauthorizedDeviceDenied) {
  authority.grant(basic_rights());  // devices = {1}
  const auto dk3 = authority.register_device(3);
  // Device 3 somehow obtained device 1's license bytes.
  auto lic = authority.request_license(7, 1, 10);
  ASSERT_TRUE(lic.is_ok());
  PlaybackDevice d3(3, dk3);
  d3.install_license(lic.value());
  const auto res = d3.play(7, 10, encrypted, OutputPath::kAnalog);
  EXPECT_FALSE(res.allowed());
  EXPECT_EQ(res.denial, DenialReason::kDeviceNotAuthorized);
}

TEST_F(PlayerFixture, AnalogOnlyBlocksDigitalOutput) {
  auto r = basic_rights();
  r.analog_output_only = true;
  authority.grant(r);
  auto dev = online_device();
  const auto digital = dev.play(7, 10, encrypted, OutputPath::kDigital);
  EXPECT_FALSE(digital.allowed());
  EXPECT_EQ(digital.denial, DenialReason::kOutputNotPermitted);
  const auto analog = dev.play(7, 10, encrypted, OutputPath::kAnalog);
  EXPECT_TRUE(analog.allowed());
  EXPECT_EQ(analog.content, plaintext);
}

TEST_F(PlayerFixture, PlayCountSurvivesSerializeReload) {
  authority.grant(basic_rights(3));
  auto dev = online_device();
  dev.play(7, 1, encrypted, OutputPath::kAnalog);
  dev.play(7, 2, encrypted, OutputPath::kAnalog);
  // Persist and reload the store (device power cycle).
  const auto bytes = dev.store().serialize();
  const auto storage_key = derive_key(device_key, 0x73746F7265ull);
  auto reloaded = LicenseStore::parse(storage_key, bytes);
  ASSERT_TRUE(reloaded.is_ok());
  EXPECT_EQ(reloaded.value().find(7)->plays_remaining, 1u);
}

}  // namespace
}  // namespace mmsoc::drm
