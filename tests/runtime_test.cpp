// Tests for the concurrent dataflow runtime: queue primitives, engine
// correctness (determinism across worker counts, back-pressure bounds,
// multi-session multiplexing), precise wakeups under cancellation and
// deadlines, dynamic admission (submit while running), bounded work
// stealing under skew (including the steal/cancel/submit race suite the
// CI sanitizer matrix runs under TSan), real-kernel pipelines, and the
// predicted-vs-measured model comparison.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <chrono>
#include <thread>
#include <vector>

#include "core/appgraphs.h"
#include "core/profiles.h"
#include "mpsoc/mapping.h"
#include "runtime/engine.h"
#include "runtime/pipelines.h"
#include "runtime/queue.h"
#include "runtime/trace.h"

namespace mmsoc::runtime {
namespace {

// ---------------------------------------------------------------------------
// Queues
// ---------------------------------------------------------------------------

TEST(SpscQueue, FifoOrderAndWraparound) {
  SpscQueue<int> q(3);
  EXPECT_EQ(q.capacity(), 3u);
  for (int round = 0; round < 5; ++round) {
    EXPECT_TRUE(q.empty());
    for (int i = 0; i < 3; ++i) EXPECT_TRUE(q.try_push(round * 10 + i));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.try_push(99));
    for (int i = 0; i < 3; ++i) {
      auto v = q.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, round * 10 + i);
    }
    EXPECT_FALSE(q.try_pop().has_value());
  }
  EXPECT_LE(q.max_occupancy(), q.capacity());
}

TEST(SpscQueue, ConcurrentProducerConsumer) {
  SpscQueue<std::uint64_t> q(8);
  constexpr std::uint64_t kCount = 20000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount;) {
      if (q.try_push(std::uint64_t{i})) ++i;
      else std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  while (expected < kCount) {
    if (auto v = q.try_pop()) {
      ASSERT_EQ(*v, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_LE(q.max_occupancy(), q.capacity());
}

TEST(MpmcQueue, BlockingPushPopAndClose) {
  MpmcQueue<int> q(4);
  std::atomic<int> sum{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) sum.fetch_add(*v);
    });
  }
  int pushed = 0;
  for (int i = 1; i <= 100; ++i) {
    ASSERT_TRUE(q.push(i));
    pushed += i;
  }
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(sum.load(), pushed);
  EXPECT_FALSE(q.push(7));  // closed
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

mpsoc::TaskGraph diamond_graph() {
  mpsoc::TaskGraph g("diamond");
  auto task = [](const char* name, double ops) {
    mpsoc::Task t;
    t.name = name;
    t.work_ops = ops;
    return t;
  };
  const auto a = g.add_task(task("a", 2000));
  const auto b = g.add_task(task("b", 4000));
  const auto c = g.add_task(task("c", 3000));
  const auto d = g.add_task(task("d", 1000));
  (void)g.add_edge(a, b, 8);
  (void)g.add_edge(a, c, 8);
  (void)g.add_edge(b, d, 8);
  (void)g.add_edge(c, d, 8);
  return g;
}

TEST(Engine, RejectsInvalidSessions) {
  Engine engine;
  mpsoc::TaskGraph g = diamond_graph();  // no bodies attached
  EXPECT_FALSE(engine.add_session(g, mpsoc::Mapping(4, 0), 10).is_ok());

  auto g2 = diamond_graph();
  (void)attach_synthetic_bodies(g2);
  EXPECT_FALSE(engine.add_session(g2, mpsoc::Mapping(3, 0), 10).is_ok())
      << "mapping size mismatch must be rejected";
  EXPECT_FALSE(engine.add_session(g2, mpsoc::Mapping(4, 0), 0).is_ok())
      << "zero iterations must be rejected";

  mpsoc::TaskGraph cyclic("cycle");
  mpsoc::Task t;
  t.name = "x";
  t.body = [](mpsoc::TaskFiring&) {};
  const auto x = cyclic.add_task(t);
  t.name = "y";
  const auto y = cyclic.add_task(t);
  (void)cyclic.add_edge(x, y, 1);
  (void)cyclic.add_edge(y, x, 1);
  EXPECT_FALSE(engine.add_session(cyclic, mpsoc::Mapping(2, 0), 1).is_ok());
}

TEST(Engine, DeterministicAcrossWorkerCounts) {
  constexpr std::uint64_t kIters = 64;
  std::uint64_t reference_digest = 0;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    auto g = diamond_graph();
    auto sink = attach_synthetic_bodies(g, 0.1);
    EngineOptions opts;
    opts.workers = workers;
    const mpsoc::Mapping mapping = {0, 1, 2, 3};
    auto report = run_pipeline(g, mapping, kIters, opts);
    ASSERT_TRUE(report.is_ok()) << report.status().to_text();
    EXPECT_EQ(report.value().iterations, kIters);
    EXPECT_EQ(sink->tokens.load(), kIters);
    if (workers == 1) {
      reference_digest = sink->digest.load();
    } else {
      EXPECT_EQ(sink->digest.load(), reference_digest)
          << "digest must not depend on worker count (" << workers << ")";
    }
  }
}

TEST(Engine, BackPressureNeverExceedsCapacity) {
  // Fast producer into slow consumer: the bounded channel must cap
  // in-flight tokens at its capacity.
  mpsoc::TaskGraph g("producer-consumer");
  mpsoc::Task prod;
  prod.name = "producer";
  prod.body = [](mpsoc::TaskFiring& f) {
    f.outputs[0] = mpsoc::Payload{static_cast<std::uint8_t>(f.iteration)};
  };
  mpsoc::Task cons;
  cons.name = "consumer";
  cons.body = [](mpsoc::TaskFiring& f) {
    // ~50us of work per token so the producer runs far ahead.
    volatile double x = 1.0;
    for (int i = 0; i < 20000; ++i) x = x * 1.0000001 + 0.5;
    (void)f;
  };
  const auto p = g.add_task(prod);
  const auto c = g.add_task(cons);
  (void)g.add_edge(p, c, 1);

  EngineOptions opts;
  opts.workers = 2;
  opts.channel_capacity = 3;
  auto report = run_pipeline(g, {0, 1}, 200, opts);
  ASSERT_TRUE(report.is_ok()) << report.status().to_text();
  EXPECT_LE(report.value().max_channel_occupancy, 3u);
  EXPECT_GE(report.value().max_channel_occupancy, 1u);
}

TEST(Engine, MultiSessionStress) {
  constexpr std::size_t kSessions = 6;
  constexpr std::uint64_t kIters = 32;

  // Reference digest from an isolated 1-worker run.
  std::uint64_t reference = 0;
  {
    auto g = diamond_graph();
    auto sink = attach_synthetic_bodies(g, 0.05);
    EngineOptions opts;
    opts.workers = 1;
    auto r = run_pipeline(g, {0, 0, 0, 0}, kIters, opts);
    ASSERT_TRUE(r.is_ok());
    reference = sink->digest.load();
  }

  EngineOptions opts;
  opts.workers = 3;
  opts.channel_capacity = 2;
  Engine engine(opts);
  std::vector<mpsoc::TaskGraph> graphs;
  std::vector<std::shared_ptr<SyntheticSinkState>> sinks;
  graphs.reserve(kSessions);  // graphs must not reallocate after add_session
  for (std::size_t s = 0; s < kSessions; ++s) {
    graphs.push_back(diamond_graph());
    sinks.push_back(attach_synthetic_bodies(graphs.back(), 0.05));
    // Spread sessions over different PEs to exercise the shared pool.
    const mpsoc::Mapping mapping = {s % 3, (s + 1) % 3, (s + 2) % 3, s % 3};
    auto added = engine.add_session(graphs.back(), mapping, kIters);
    ASSERT_TRUE(added.is_ok()) << added.status().to_text();
  }
  const auto status = engine.run();
  ASSERT_TRUE(status.is_ok()) << status.to_text();
  for (std::size_t s = 0; s < kSessions; ++s) {
    EXPECT_EQ(sinks[s]->tokens.load(), kIters) << "session " << s;
    EXPECT_EQ(sinks[s]->digest.load(), reference)
        << "session " << s << " output diverged";
    const auto& rep = engine.report(s);
    EXPECT_EQ(rep.iterations, kIters);
    EXPECT_GT(rep.wall_s, 0.0);
    for (const auto& t : rep.tasks) EXPECT_EQ(t.firings, kIters);
  }
}

// ---------------------------------------------------------------------------
// Cancellation, deadlines, shutdown
// ---------------------------------------------------------------------------

// A chain whose stages burn enough per firing that a huge iteration
// count cannot finish within the test: the cancellation workload.
SyntheticPipeline endless_chain() {
  return make_synthetic_chain(/*stages=*/3, /*stage_ops=*/20000.0);
}

TEST(Engine, CancelMidPipelineStopsPromptlyAndReportsPartial) {
  auto pipe = endless_chain();
  EngineOptions opts;
  opts.workers = 2;
  Engine engine(opts);
  constexpr std::uint64_t kIters = 200'000'000;  // would take hours
  auto added = engine.add_session(pipe.graph, {0, 1, 0}, kIters);
  ASSERT_TRUE(added.is_ok()) << added.status().to_text();

  ASSERT_TRUE(engine.start().is_ok());
  EXPECT_TRUE(engine.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  engine.cancel(added.value());

  const auto t0 = std::chrono::steady_clock::now();
  const auto status = engine.wait();
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_TRUE(status.is_ok()) << status.to_text();  // cancel is not an error
  EXPECT_LT(waited, std::chrono::seconds(10)) << "cancel must not drain "
                                                 "the remaining iterations";
  EXPECT_FALSE(engine.running());

  const auto& rep = engine.report(added.value());
  EXPECT_EQ(rep.outcome, SessionOutcome::kCancelled);
  EXPECT_EQ(rep.status.code(), common::StatusCode::kCancelled);
  EXPECT_GT(rep.completed_firings, 0u) << "ran for 20ms before the cancel";
  EXPECT_LT(rep.completed_firings, kIters * pipe.graph.task_count());
  // Cancel is graceful at iteration boundaries: no task may be more than
  // the pipeline depth (channel capacity per edge) ahead of the sink.
  for (const auto& t : rep.tasks) {
    EXPECT_LT(t.firings, kIters) << t.name;
  }
}

TEST(Engine, CancelIsIdempotentAndSafeOnFinishedSessions) {
  auto pipe = make_synthetic_chain(2, 100.0);
  Engine engine;
  auto added = engine.add_session(pipe.graph, {0, 0}, 10);
  ASSERT_TRUE(added.is_ok());
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_EQ(engine.report(0).outcome, SessionOutcome::kCompleted);
  engine.cancel(added.value());  // after completion: no-op
  engine.cancel(added.value());
  engine.cancel(99);  // out of range: no-op
  EXPECT_EQ(engine.report(0).outcome, SessionOutcome::kCompleted);
  EXPECT_EQ(engine.report(0).completed_firings, 20u);
}

TEST(Engine, CancelBeforeStartRetiresSessionImmediately) {
  auto pipe = endless_chain();
  Engine engine;
  auto added = engine.add_session(pipe.graph, {0, 0, 0}, 1'000'000'000);
  ASSERT_TRUE(added.is_ok());
  engine.cancel(added.value());
  ASSERT_TRUE(engine.run().is_ok());
  const auto& rep = engine.report(added.value());
  EXPECT_EQ(rep.outcome, SessionOutcome::kCancelled);
  EXPECT_EQ(rep.completed_firings, 0u);
}

TEST(Engine, DeadlineExpiryCancelsWithDeadlineExceeded) {
  auto slow = endless_chain();
  auto fast = make_synthetic_chain(2, 100.0);
  EngineOptions opts;
  opts.workers = 2;
  Engine engine(opts);
  SessionOptions deadline;
  deadline.timeout = std::chrono::milliseconds(30);
  auto s_slow =
      engine.add_session(slow.graph, {0, 1, 0}, 200'000'000, deadline);
  auto s_fast = engine.add_session(fast.graph, {1, 0}, 50);
  ASSERT_TRUE(s_slow.is_ok());
  ASSERT_TRUE(s_fast.is_ok());

  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(30));

  const auto& slow_rep = engine.report(s_slow.value());
  EXPECT_EQ(slow_rep.outcome, SessionOutcome::kDeadlineExceeded);
  EXPECT_EQ(slow_rep.status.code(), common::StatusCode::kDeadlineExceeded);
  // The co-scheduled in-budget session must be untouched.
  const auto& fast_rep = engine.report(s_fast.value());
  EXPECT_EQ(fast_rep.outcome, SessionOutcome::kCompleted);
  EXPECT_EQ(fast_rep.completed_firings, 100u);
}

TEST(Engine, GenerousDeadlineDoesNotFire) {
  auto pipe = make_synthetic_chain(3, 200.0);
  Engine engine;
  SessionOptions o;
  o.timeout = std::chrono::minutes(10);
  auto added = engine.add_session(pipe.graph, {0, 0, 0}, 25, o);
  ASSERT_TRUE(added.is_ok());
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_EQ(engine.report(added.value()).outcome, SessionOutcome::kCompleted);
}

// Regression: destroying an engine whose sessions are still back-pressured
// (producer parked on a full channel, consumer slow) must cancel and join
// instead of wedging on workers that sleep indefinitely.
TEST(Engine, DestructorCancelsBackPressuredSessions) {
  auto pipe = endless_chain();
  const auto t0 = std::chrono::steady_clock::now();
  {
    EngineOptions opts;
    opts.workers = 2;
    opts.channel_capacity = 1;  // maximal back-pressure
    Engine engine(opts);
    auto added = engine.add_session(pipe.graph, {0, 1, 0}, 200'000'000);
    ASSERT_TRUE(added.is_ok());
    ASSERT_TRUE(engine.start().is_ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    // Engine goes out of scope with ~2e8 iterations outstanding and
    // workers parked on full/empty channels.
  }
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(30))
      << "destructor must cancel all sessions and join promptly";
}

TEST(Engine, ManySessionsFewWorkersNoStarvation) {
  // 16 sessions multiplexed over 2 workers: every session must finish
  // and every task must fire exactly its iteration count (no session
  // starved by its siblings, no firing lost at the wakeup boundary).
  constexpr std::size_t kSessions = 16;
  constexpr std::uint64_t kIters = 40;
  EngineOptions opts;
  opts.workers = 2;
  opts.channel_capacity = 2;
  Engine engine(opts);
  std::vector<SyntheticPipeline> pipes;
  pipes.reserve(kSessions);  // graphs must not reallocate after add_session
  for (std::size_t s = 0; s < kSessions; ++s) {
    pipes.push_back(make_synthetic_chain(4, 500.0));
    const mpsoc::Mapping mapping = {s % 2, (s + 1) % 2, s % 2, (s + 1) % 2};
    auto added = engine.add_session(pipes.back().graph, mapping, kIters);
    ASSERT_TRUE(added.is_ok()) << added.status().to_text();
  }
  const auto status = engine.run();
  ASSERT_TRUE(status.is_ok()) << status.to_text();
  for (std::size_t s = 0; s < kSessions; ++s) {
    const auto& rep = engine.report(s);
    EXPECT_EQ(rep.outcome, SessionOutcome::kCompleted) << "session " << s;
    EXPECT_EQ(rep.completed_firings, kIters * 4) << "session " << s;
    EXPECT_EQ(pipes[s].sink->tokens.load(), kIters) << "session " << s;
    for (const auto& t : rep.tasks) EXPECT_EQ(t.firings, kIters);
  }
}

TEST(Engine, ConcurrentWaitIsSafe) {
  // Two threads wait() on the same engine: exactly one joins the pool,
  // the other parks until kDone; both see the same result — never a
  // double-join (std::system_error) or a race on the thread vector.
  auto pipe = make_synthetic_chain(3, 2000.0);
  Engine engine;
  ASSERT_TRUE(engine.add_session(pipe.graph, {0, 0, 0}, 500).is_ok());
  ASSERT_TRUE(engine.start().is_ok());
  common::Status a = common::Status(common::StatusCode::kInternal, "unset");
  std::thread other([&] { a = engine.wait(); });
  const auto b = engine.wait();
  other.join();
  EXPECT_TRUE(a.is_ok()) << a.to_text();
  EXPECT_TRUE(b.is_ok()) << b.to_text();
  EXPECT_EQ(engine.report(0).outcome, SessionOutcome::kCompleted);
}

TEST(Engine, StartWaitLifecycleIsEnforced) {
  auto pipe = make_synthetic_chain(2, 100.0);
  Engine engine;
  EXPECT_FALSE(engine.wait().is_ok()) << "wait before start must fail";
  ASSERT_TRUE(engine.add_session(pipe.graph, {0, 0}, 5).is_ok());
  ASSERT_TRUE(engine.start().is_ok());
  EXPECT_FALSE(engine.start().is_ok()) << "double start must fail";
  // Dynamic admission: the engine accepts sessions after start().
  auto late = make_synthetic_chain(2, 100.0);
  auto mid = engine.submit(late.graph, {0, 0}, 5);
  ASSERT_TRUE(mid.is_ok()) << "submit while running must be admitted: "
                           << mid.status().to_text();
  ASSERT_TRUE(engine.wait().is_ok());
  EXPECT_TRUE(engine.wait().is_ok()) << "wait after done is idempotent";
  EXPECT_EQ(engine.report(0).outcome, SessionOutcome::kCompleted);
  EXPECT_EQ(engine.report(mid.value()).outcome, SessionOutcome::kCompleted);
  auto gone = make_synthetic_chain(2, 100.0);
  EXPECT_FALSE(engine.submit(gone.graph, {0, 0}, 5).is_ok())
      << "submit after wait() drained must be rejected";
}

TEST(Engine, PropagatesBodyErrors) {
  mpsoc::TaskGraph g("throws");
  mpsoc::Task t;
  t.name = "boom";
  t.body = [](mpsoc::TaskFiring& f) {
    if (f.iteration == 3) throw std::runtime_error("kernel fault");
  };
  (void)g.add_task(t);
  auto r = run_pipeline(g, {0}, 10);
  ASSERT_FALSE(r.is_ok());
  EXPECT_NE(r.status().to_text().find("kernel fault"), std::string::npos);
}

TEST(Engine, SubmitAfterBodyErrorIsRejected) {
  // Once a body threw, the pool has exited even though wait() has not
  // been called yet: admitting more work would strand it (and leak the
  // caller's admission slot in a sharded front-end).
  mpsoc::TaskGraph bad("throws");
  mpsoc::Task t;
  t.name = "boom";
  t.body = [](mpsoc::TaskFiring&) { throw std::runtime_error("fault"); };
  (void)bad.add_task(t);
  Engine engine;
  ASSERT_TRUE(engine.add_session(bad, {0}, 10).is_ok());
  ASSERT_TRUE(engine.start().is_ok());
  // The single firing throws almost immediately; poll until the error
  // latches, then submit.
  auto late = make_synthetic_chain(2, 100.0);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    auto added = engine.submit(late.graph, {0, 0}, 5);
    if (!added.is_ok()) {
      EXPECT_EQ(added.status().code(), common::StatusCode::kUnavailable);
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "submit must start failing once the engine stopped on error";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(engine.wait().is_ok()) << "the body error still surfaces";
}

TEST(Engine, BodyErrorAbortsEdgeFreeSiblingSessionPromptly) {
  // Regression: an edge-free (single-task) session has no channel bound,
  // so its drain loop must observe the engine stop flag at iteration
  // boundaries — not run its full 2e8 remaining iterations after a
  // sibling session's body threw.
  mpsoc::TaskGraph bad("throws");
  mpsoc::Task t;
  t.name = "boom";
  t.body = [](mpsoc::TaskFiring&) { throw std::runtime_error("fault"); };
  (void)bad.add_task(t);
  auto endless = make_synthetic_chain(1, 20000.0);  // lone source/sink

  EngineOptions opts;
  opts.workers = 2;
  Engine engine(opts);
  ASSERT_TRUE(engine.add_session(bad, {0}, 10).is_ok());
  ASSERT_TRUE(engine.add_session(endless.graph, {1}, 200'000'000).is_ok());
  const auto t0 = std::chrono::steady_clock::now();
  const auto status = engine.run();
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(30));
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(engine.report(1).outcome, SessionOutcome::kAborted);
}

// ---------------------------------------------------------------------------
// Dynamic admission and work stealing
// ---------------------------------------------------------------------------

TEST(Engine, SubmitWhileRunningCompletesBitIdentically) {
  constexpr std::uint64_t kIters = 48;
  // Reference digest: the same chain run isolated on one worker.
  std::uint64_t reference = 0;
  {
    auto pipe = make_synthetic_chain(4, 500.0);
    EngineOptions opts;
    opts.workers = 1;
    ASSERT_TRUE(run_pipeline(pipe.graph, {0, 0, 0, 0}, kIters, opts).is_ok());
    reference = pipe.sink->digest.load();
  }

  EngineOptions opts;
  opts.workers = 2;
  Engine engine(opts);
  std::vector<SyntheticPipeline> pipes;
  pipes.reserve(6);
  std::vector<std::size_t> ids;
  pipes.push_back(make_synthetic_chain(4, 500.0));
  auto first = engine.add_session(pipes.back().graph, {0, 1, 0, 1}, kIters);
  ASSERT_TRUE(first.is_ok());
  ids.push_back(first.value());
  ASSERT_TRUE(engine.start().is_ok());
  // Admit the rest mid-flight: tasks land on live workers immediately.
  for (int i = 0; i < 5; ++i) {
    pipes.push_back(make_synthetic_chain(4, 500.0));
    auto added = engine.submit(pipes.back().graph, {1, 0, 1, 0}, kIters);
    ASSERT_TRUE(added.is_ok()) << added.status().to_text();
    ids.push_back(added.value());
  }
  ASSERT_TRUE(engine.wait().is_ok());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto& rep = engine.report(ids[i]);
    EXPECT_EQ(rep.outcome, SessionOutcome::kCompleted) << "session " << i;
    EXPECT_EQ(rep.completed_firings, kIters * 4) << "session " << i;
    EXPECT_EQ(pipes[i].sink->digest.load(), reference)
        << "dynamically admitted session " << i << " diverged";
    EXPECT_GT(rep.wall_s, 0.0);
  }
}

TEST(Engine, StartEmptyThenSubmitServesTraffic) {
  EngineOptions opts;
  opts.workers = 2;
  Engine engine(opts);
  ASSERT_TRUE(engine.start().is_ok())
      << "an empty engine must start and park, ready for dynamic submits";
  std::vector<SyntheticPipeline> pipes;
  pipes.reserve(3);
  for (int i = 0; i < 3; ++i) {
    pipes.push_back(make_synthetic_chain(3, 300.0));
    ASSERT_TRUE(engine.submit(pipes.back().graph, {0, 1, 0}, 20).is_ok());
  }
  ASSERT_TRUE(engine.wait().is_ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(engine.report(static_cast<std::size_t>(i)).outcome,
              SessionOutcome::kCompleted);
    EXPECT_EQ(pipes[static_cast<std::size_t>(i)].sink->tokens.load(), 20u);
  }
}

TEST(Engine, SkewedStageStealingMigratesWorkAndStaysDeterministic) {
  // One 10x-slow stage, every task hinted at worker 0 of 4: under the
  // static binding three workers would idle while worker 0 wedges. With
  // stealing, tasks migrate and the other workers make progress — and
  // the output stays bit-identical to an isolated run.
  constexpr std::size_t kSessions = 8;
  constexpr std::uint64_t kIters = 64;
  std::uint64_t reference = 0;
  {
    auto pipe = make_skewed_chain(4, 2000.0, 1);
    EngineOptions opts;
    opts.workers = 1;
    ASSERT_TRUE(run_pipeline(pipe.graph, {0, 0, 0, 0}, kIters, opts).is_ok());
    reference = pipe.sink->digest.load();
  }

  EngineOptions opts;
  opts.workers = 4;
  opts.work_stealing = true;
  Engine engine(opts);
  std::vector<SyntheticPipeline> pipes;
  pipes.reserve(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    pipes.push_back(make_skewed_chain(4, 2000.0, 1));
    ASSERT_TRUE(
        engine.add_session(pipes.back().graph, {0, 0, 0, 0}, kIters).is_ok());
  }
  ASSERT_TRUE(engine.run().is_ok());

  std::uint64_t migrations = 0;
  std::uint64_t fired_off_home = 0;
  for (std::size_t s = 0; s < kSessions; ++s) {
    const auto& rep = engine.report(s);
    EXPECT_EQ(rep.outcome, SessionOutcome::kCompleted) << "session " << s;
    EXPECT_EQ(pipes[s].sink->digest.load(), reference)
        << "session " << s << " output depends on stealing";
    migrations += rep.task_migrations;
    for (const auto& t : rep.tasks) {
      EXPECT_EQ(t.pe, 0u) << "logical PE attribution must survive migration";
      EXPECT_EQ(t.home_worker, 0u);
      if (t.worker != t.home_worker) fired_off_home += t.firings;
    }
  }
  EXPECT_GT(migrations, 0u)
      << "8 sessions hinted at one worker of four must trigger stealing";
  EXPECT_GT(fired_off_home, 0u)
      << "other workers must make progress on migrated tasks";
  EXPECT_EQ(engine.steal_count(), migrations);
}

TEST(Engine, StealingDisabledKeepsStaticBinding) {
  EngineOptions opts;
  opts.workers = 4;
  opts.work_stealing = false;
  Engine engine(opts);
  std::vector<SyntheticPipeline> pipes;
  pipes.reserve(4);
  for (int s = 0; s < 4; ++s) {
    pipes.push_back(make_skewed_chain(3, 1000.0, 1));
    ASSERT_TRUE(
        engine.add_session(pipes.back().graph, {0, 0, 0}, 24).is_ok());
  }
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_EQ(engine.steal_count(), 0u);
  for (std::size_t s = 0; s < 4; ++s) {
    const auto& rep = engine.report(s);
    EXPECT_EQ(rep.outcome, SessionOutcome::kCompleted);
    EXPECT_EQ(rep.task_migrations, 0u);
    for (const auto& t : rep.tasks) {
      EXPECT_EQ(t.worker, t.home_worker)
          << "with stealing off the hint is a hard binding";
    }
  }
}

TEST(Engine, StealCancelSubmitRaceStress) {
  // TSan target: concurrent submits, cancels, and steals over a skewed
  // load. Every session must end completed or cancelled, and the engine
  // must drain promptly.
  constexpr std::uint64_t kIters = 160;
  EngineOptions opts;
  opts.workers = 4;
  opts.channel_capacity = 2;
  Engine engine(opts);
  std::vector<SyntheticPipeline> pipes;
  pipes.reserve(16);
  std::vector<std::size_t> ids;
  for (int s = 0; s < 8; ++s) {
    pipes.push_back(make_skewed_chain(4, 3000.0, 1));
    auto added = engine.add_session(pipes.back().graph, {0, 0, 0, 0}, kIters);
    ASSERT_TRUE(added.is_ok());
    ids.push_back(added.value());
  }
  ASSERT_TRUE(engine.start().is_ok());
  std::thread canceller([&] {
    for (std::size_t i = 0; i < 8; i += 2) {
      engine.cancel(ids[i]);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // Submit more sessions while cancels and steals are in flight.
  std::vector<std::size_t> late_ids;
  for (int s = 0; s < 8; ++s) {
    pipes.push_back(make_skewed_chain(4, 3000.0, 1));
    auto added = engine.submit(pipes.back().graph, {1, 1, 1, 1}, 32);
    ASSERT_TRUE(added.is_ok()) << added.status().to_text();
    late_ids.push_back(added.value());
  }
  canceller.join();
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(engine.wait().is_ok());
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(60));
  for (const std::size_t id : ids) {
    const auto outcome = engine.report(id).outcome;
    EXPECT_TRUE(outcome == SessionOutcome::kCompleted ||
                outcome == SessionOutcome::kCancelled)
        << to_string(outcome);
  }
  for (const std::size_t id : late_ids) {
    EXPECT_EQ(engine.report(id).outcome, SessionOutcome::kCompleted);
  }
}

// ---------------------------------------------------------------------------
// Hot path: batched firing + payload recycling
// ---------------------------------------------------------------------------

// Stale-byte regression: a producer emitting *shrinking and growing*
// variable-length payloads through a recycled channel. If the engine
// ever handed a body a non-cleared recycled buffer (or resize left old
// tail bytes visible), the consumer's exact-content check would trip.
TEST(Engine, RecycledOutputsArriveClearedWithNoStaleBytes) {
  constexpr std::uint64_t kIters = 300;
  mpsoc::TaskGraph g("recycle-probe");
  mpsoc::Task prod;
  prod.name = "producer";
  prod.work_ops = 10;
  std::atomic<std::uint64_t> dirty{0};
  prod.body = [&dirty](mpsoc::TaskFiring& f) {
    if (!f.outputs[0].empty()) dirty.fetch_add(1);
    // Length cycles 1..23 so a recycled buffer regularly held *more*
    // bytes than the current payload needs.
    const std::size_t len = 1 + (f.iteration * 7) % 23;
    f.outputs[0].resize(len);
    for (std::size_t i = 0; i < len; ++i) {
      f.outputs[0][i] = static_cast<std::uint8_t>(f.iteration + i);
    }
  };
  mpsoc::Task cons;
  cons.name = "consumer";
  cons.work_ops = 10;
  std::atomic<std::uint64_t> bad{0};
  cons.body = [&bad](mpsoc::TaskFiring& f) {
    const auto& in = *f.inputs[0];
    const std::size_t len = 1 + (f.iteration * 7) % 23;
    if (in.size() != len) {
      bad.fetch_add(1);
      return;
    }
    for (std::size_t i = 0; i < len; ++i) {
      if (in[i] != static_cast<std::uint8_t>(f.iteration + i)) {
        bad.fetch_add(1);
        return;
      }
    }
  };
  const auto p = g.add_task(prod);
  const auto c = g.add_task(cons);
  (void)g.add_edge(p, c, 23);

  EngineOptions opts;
  opts.workers = 2;
  opts.channel_capacity = 4;
  opts.firing_quantum = 8;
  opts.recycle_payloads = true;
  auto report = run_pipeline(g, {0, 1}, kIters, opts);
  ASSERT_TRUE(report.is_ok()) << report.status().to_text();
  EXPECT_EQ(dirty.load(), 0u) << "recycled outputs must arrive cleared";
  EXPECT_EQ(bad.load(), 0u) << "stale bytes leaked across iterations";
  EXPECT_GT(report.value().payloads_recycled, 0u)
      << "the free-list ring never engaged";
}

// Free-list bounds under back-pressure: a fast producer against a slow
// consumer keeps every ring (data and free) at its bound; recycling must
// neither grow channels past capacity nor lose tokens.
TEST(Engine, RecyclingHoldsBoundsUnderBackPressure) {
  mpsoc::TaskGraph g("recycle-backpressure");
  mpsoc::Task prod;
  prod.name = "producer";
  prod.body = [](mpsoc::TaskFiring& f) {
    f.outputs[0].resize(64);
    f.outputs[0][0] = static_cast<std::uint8_t>(f.iteration);
  };
  mpsoc::Task cons;
  cons.name = "consumer";
  std::atomic<std::uint64_t> seen{0};
  cons.body = [&seen](mpsoc::TaskFiring& f) {
    volatile double x = 1.0;
    for (int i = 0; i < 20000; ++i) x = x * 1.0000001 + 0.5;
    seen.fetch_add((*f.inputs[0])[0]);
  };
  const auto p = g.add_task(prod);
  const auto c = g.add_task(cons);
  (void)g.add_edge(p, c, 64);

  EngineOptions opts;
  opts.workers = 2;
  opts.channel_capacity = 3;
  opts.firing_quantum = 8;
  opts.recycle_payloads = true;
  constexpr std::uint64_t kIters = 200;
  auto report = run_pipeline(g, {0, 1}, kIters, opts);
  ASSERT_TRUE(report.is_ok()) << report.status().to_text();
  EXPECT_LE(report.value().max_channel_occupancy, 3u);
  EXPECT_GT(report.value().payloads_recycled, 0u);
  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < kIters; ++i) {
    expect += static_cast<std::uint8_t>(i);
  }
  EXPECT_EQ(seen.load(), expect) << "recycling lost or corrupted a token";
}

// Satellite regression: batching (quantum > 1) + stealing must stay
// bit-identical across every worker count and quantum — a task mid-batch
// is popped out of its owner's queue, so no thief can split a batch.
TEST(Engine, BatchingWithStealingBitIdenticalAcrossWorkerCounts) {
  constexpr std::uint64_t kIters = 48;
  std::uint64_t reference = 0;
  bool have_reference = false;
  for (const std::size_t quantum : {1u, 2u, 8u}) {
    for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
      auto pipe = make_skewed_chain(5, 2000.0, 2, 8.0);
      EngineOptions opts;
      opts.workers = workers;
      opts.work_stealing = true;
      opts.firing_quantum = quantum;
      opts.recycle_payloads = true;
      mpsoc::Mapping mapping(5, 0);  // everything hinted at worker 0
      auto report = run_pipeline(pipe.graph, mapping, kIters, opts);
      ASSERT_TRUE(report.is_ok()) << report.status().to_text();
      EXPECT_EQ(pipe.sink->tokens.load(), kIters);
      if (!have_reference) {
        reference = pipe.sink->digest.load();
        have_reference = true;
      } else {
        EXPECT_EQ(pipe.sink->digest.load(), reference)
            << "digest diverged at quantum " << quantum << ", workers "
            << workers;
      }
    }
  }
}

// The firing quantum must not change real-kernel output either: the
// Fig. 1 encoder bitstream is bit-identical across quanta.
TEST(Engine, FiringQuantumPreservesVideoBitstream) {
  std::uint32_t reference = 0;
  bool have_reference = false;
  for (const std::size_t quantum : {1u, 8u, 64u}) {
    VideoPipelineConfig cfg;
    cfg.width = 32;
    cfg.height = 32;
    auto pipe = make_video_encoder_pipeline(cfg);
    EngineOptions opts;
    opts.workers = 3;
    opts.firing_quantum = quantum;
    mpsoc::Mapping mapping(pipe.graph.task_count());
    for (std::size_t t = 0; t < mapping.size(); ++t) mapping[t] = t % 3;
    auto report = run_pipeline(pipe.graph, mapping, 12, opts);
    ASSERT_TRUE(report.is_ok()) << report.status().to_text();
    ASSERT_EQ(pipe.sink->frames_coded, 12u);
    if (!have_reference) {
      reference = pipe.sink->bitstream_crc;
      have_reference = true;
    } else {
      EXPECT_EQ(pipe.sink->bitstream_crc, reference)
          << "bitstream depends on firing quantum " << quantum;
    }
  }
}

// Recycling off must mean *no* reuse (the fresh-allocation bench
// baseline is honest), and identical output either way.
TEST(Engine, RecyclingToggleIsBitIdenticalAndAccounted) {
  constexpr std::uint64_t kIters = 32;
  std::uint64_t digests[2] = {0, 0};
  std::uint64_t recycled[2] = {0, 0};
  for (const bool recycle : {false, true}) {
    auto pipe = make_synthetic_chain(4, 1000.0);
    EngineOptions opts;
    opts.workers = 2;
    opts.recycle_payloads = recycle;
    auto report = run_pipeline(pipe.graph, {0, 1, 0, 1}, kIters, opts);
    ASSERT_TRUE(report.is_ok()) << report.status().to_text();
    digests[recycle ? 1 : 0] = pipe.sink->digest.load();
    recycled[recycle ? 1 : 0] = report.value().payloads_recycled;
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(recycled[0], 0u) << "recycling off must not touch free rings";
  EXPECT_GT(recycled[1], 0u);
}

// Blocking-stage stealing (the E-RT/STEAL scenario): sessions whose
// accelerator-wait stage is hinted at one worker only overlap their
// waits if stealing migrates the blocked tasks — and the digest must
// not care. Also exercises bodies blocking while thieves raid the
// owner's queue, which the old fire-under-the-queue-mutex engine
// serialized (TSan target).
TEST(Engine, BlockingStageStealingOverlapsWaitsDeterministically) {
  constexpr std::size_t kSessions = 4;
  constexpr std::uint64_t kIters = 6;
  std::uint64_t reference = 0;
  {
    auto pipe = make_blocking_skewed_chain(4, 1000.0, 2, 200.0);
    EngineOptions opts;
    opts.workers = 1;
    ASSERT_TRUE(run_pipeline(pipe.graph, {0, 0, 0, 0}, kIters, opts).is_ok());
    reference = pipe.sink->digest.load();
  }
  EngineOptions opts;
  opts.workers = 4;
  opts.work_stealing = true;
  Engine engine(opts);
  std::vector<SyntheticPipeline> pipes;
  pipes.reserve(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    pipes.push_back(make_blocking_skewed_chain(4, 1000.0, 2, 200.0));
    ASSERT_TRUE(
        engine.add_session(pipes.back().graph, {0, 0, 0, 0}, kIters).is_ok());
  }
  ASSERT_TRUE(engine.run().is_ok());
  std::uint64_t migrations = 0;
  for (std::size_t s = 0; s < kSessions; ++s) {
    EXPECT_EQ(engine.report(s).outcome, SessionOutcome::kCompleted);
    EXPECT_EQ(pipes[s].sink->digest.load(), reference) << "session " << s;
    migrations += engine.report(s).task_migrations;
  }
  EXPECT_GT(migrations, 0u)
      << "blocked-stage tasks hinted at one worker must migrate";
}

// Mid-batch wakeup: a slow producer's batch must not serialize the
// pipeline. Two blocking stages on two workers overlap only if the
// first token of a batch wakes the downstream worker immediately —
// with the notify deferred to batch end, the stages run as alternating
// bursts and the wall roughly doubles.
TEST(Engine, SlowBatchOverlapsDownstreamStage) {
  constexpr std::uint64_t kIters = 8;
  constexpr double kBlockUs = 2000.0;
  mpsoc::TaskGraph g("overlap");
  auto stage = [&](const char* name) {
    mpsoc::Task t;
    t.name = name;
    t.work_ops = 10;
    return t;
  };
  const auto a = g.add_task(stage("a"));
  const auto b = g.add_task(stage("b"));
  (void)g.add_edge(a, b, 8);
  const auto block_body = [](mpsoc::TaskFiring& f) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::micro>(2000.0));
    if (!f.outputs.empty()) f.store(0, &f.iteration, sizeof(f.iteration));
  };
  g.set_body(a, block_body);
  g.set_body(b, block_body);

  EngineOptions opts;
  opts.workers = 2;
  opts.firing_quantum = 8;
  opts.channel_capacity = 8;
  const auto t0 = std::chrono::steady_clock::now();
  auto report = run_pipeline(g, {0, 1}, kIters, opts);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_TRUE(report.is_ok()) << report.status().to_text();
  // Overlapped: ~(kIters + 1) blocks. Serialized bursts: ~2 * kIters.
  // Generous margin for scheduler noise, still well below serialized.
  EXPECT_LT(wall, 2.0 * static_cast<double>(kIters) * kBlockUs * 1e-6 * 0.85)
      << "downstream stage slept through the producer's batch";
}

// A victim blocked inside a popped task must still be stealable-from:
// the popped task counts toward the thief's leave-one floor, so the
// victim's last *queued* ready task can migrate instead of starving
// behind the block while another worker idles.
TEST(Engine, LastQueuedTaskIsStealableWhileOwnerBlocksMidBatch) {
  EngineOptions opts;
  opts.workers = 2;
  opts.work_stealing = true;
  Engine engine(opts);
  // Lone blocking task hinted at worker 0: ~2ms accelerator wait per
  // firing, batched — worker 0 spends nearly all its time popped into
  // this task's batches.
  auto blocker = make_blocking_skewed_chain(1, 100.0, 0, 2000.0);
  ASSERT_TRUE(engine.add_session(blocker.graph, {0}, 20).is_ok());
  ASSERT_TRUE(engine.start().is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // Admit a fast task onto the same (blocked) worker. It lands queued
  // behind the popped blocker; worker 1 is idle. Only the inflight-
  // aware steal rule lets it migrate.
  auto runner = make_synthetic_chain(1, 200.0);
  auto late = engine.submit(runner.graph, {0}, 64);
  ASSERT_TRUE(late.is_ok());
  ASSERT_TRUE(engine.wait().is_ok());
  ASSERT_EQ(engine.report(0).outcome, SessionOutcome::kCompleted);
  ASSERT_EQ(engine.report(late.value()).outcome, SessionOutcome::kCompleted);
  EXPECT_GE(engine.report(0).task_migrations +
                engine.report(late.value()).task_migrations,
            1u)
      << "the queued task starved behind the blocked batch";
  EXPECT_EQ(runner.sink->tokens.load(), 64u);
}

TEST(Engine, PinWorkersRunsToCompletionOrFailsLoudly) {
  EngineOptions opts;
  opts.workers = 2;
  opts.pin_workers = true;
  Engine engine(opts);
  auto pipe = make_synthetic_chain(3, 500.0);
  ASSERT_TRUE(engine.add_session(pipe.graph, {0, 1, 0}, 20).is_ok());
  const auto status = engine.run();
#if defined(__linux__)
  ASSERT_TRUE(status.is_ok()) << status.to_text();
  EXPECT_EQ(engine.report(0).outcome, SessionOutcome::kCompleted);
  EXPECT_EQ(pipe.sink->tokens.load(), 20u);
#else
  // Unsupported platforms must surface a Status, never silently unpin.
  EXPECT_FALSE(status.is_ok());
#endif
}

TEST(Engine, ReportExposesPerTaskMeanServiceTime) {
  auto pipe = make_synthetic_chain(3, 2000.0);
  auto report = run_pipeline(pipe.graph, {0, 0, 0}, 16);
  ASSERT_TRUE(report.is_ok());
  const auto& rep = report.value();
  const auto means = rep.mean_service_times();
  ASSERT_EQ(means.size(), rep.tasks.size());
  for (std::size_t t = 0; t < rep.tasks.size(); ++t) {
    EXPECT_GT(means[t], 0.0) << "calibration input must be populated";
    EXPECT_DOUBLE_EQ(means[t], rep.tasks[t].mean_firing_s());
  }
}

// ---------------------------------------------------------------------------
// Real-kernel pipelines
// ---------------------------------------------------------------------------

TEST(VideoPipeline, BitIdenticalAcrossWorkerCounts) {
  constexpr std::uint64_t kFrames = 8;
  VideoPipelineConfig cfg;
  cfg.width = 32;
  cfg.height = 32;

  std::uint32_t ref_bits = 0, ref_recon = 0;
  std::uint64_t ref_bytes = 0;
  for (const std::size_t workers : {1u, 4u}) {
    auto pipe = make_video_encoder_pipeline(cfg);
    ASSERT_TRUE(pipe.graph.fully_executable());
    EngineOptions opts;
    opts.workers = workers;
    const mpsoc::Mapping mapping(pipe.graph.task_count(),
                                 0);  // PEs resolved mod pool anyway
    mpsoc::Mapping spread = mapping;
    for (std::size_t i = 0; i < spread.size(); ++i) spread[i] = i % 4;
    auto report = run_pipeline(pipe.graph, spread, kFrames, opts);
    ASSERT_TRUE(report.is_ok()) << report.status().to_text();

    EXPECT_EQ(pipe.sink->frames_coded, kFrames);
    EXPECT_EQ(pipe.sink->frames_reconstructed, kFrames);
    EXPECT_GT(pipe.sink->bitstream_bytes, 0u);
    if (workers == 1) {
      ref_bits = pipe.sink->bitstream_crc;
      ref_recon = pipe.sink->recon_crc;
      ref_bytes = pipe.sink->bitstream_bytes;
    } else {
      EXPECT_EQ(pipe.sink->bitstream_crc, ref_bits)
          << "bitstream must be bit-identical at " << workers << " workers";
      EXPECT_EQ(pipe.sink->recon_crc, ref_recon);
      EXPECT_EQ(pipe.sink->bitstream_bytes, ref_bytes);
    }
  }
}

TEST(AudioPipeline, BitIdenticalAcrossWorkerCounts) {
  constexpr std::uint64_t kGranules = 12;
  AudioPipelineConfig cfg;

  std::uint32_t ref_crc = 0;
  for (const std::size_t workers : {1u, 3u}) {
    auto pipe = make_audio_encoder_pipeline(cfg);
    ASSERT_TRUE(pipe.graph.fully_executable());
    EngineOptions opts;
    opts.workers = workers;
    mpsoc::Mapping mapping(pipe.graph.task_count(), 0);
    for (std::size_t i = 0; i < mapping.size(); ++i) mapping[i] = i % 3;
    auto report = run_pipeline(pipe.graph, mapping, kGranules, opts);
    ASSERT_TRUE(report.is_ok()) << report.status().to_text();
    EXPECT_EQ(pipe.sink->granules_packed, kGranules);
    EXPECT_GT(pipe.sink->frame_bytes, 0u);
    if (workers == 1) {
      ref_crc = pipe.sink->frame_crc;
    } else {
      EXPECT_EQ(pipe.sink->frame_crc, ref_crc);
    }
  }
}

// ---------------------------------------------------------------------------
// Predicted vs measured
// ---------------------------------------------------------------------------

TEST(Trace, ComparisonIsSaneForVideoPipeline) {
  VideoPipelineConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  auto pipe = make_video_encoder_pipeline(cfg);
  const auto platform = core::device_platform(core::DeviceClass::kVideoCamera);
  const auto mapped =
      mpsoc::map_graph(pipe.graph, platform, mpsoc::MapperKind::kHeft);
  ASSERT_TRUE(mapped.schedule.feasible);

  auto report = run_pipeline(pipe.graph, mapped.mapping, 6);
  ASSERT_TRUE(report.is_ok()) << report.status().to_text();
  const auto& sr = report.value();

  // Sanity bounds: wall clock positive, every task fired every iteration,
  // busy time is contained in wall * workers (loose upper bound).
  EXPECT_GT(sr.wall_s, 0.0);
  EXPECT_GT(sr.measured_ii_s(), 0.0);
  for (const auto& t : sr.tasks) {
    EXPECT_EQ(t.firings, 6u) << t.name;
    EXPECT_GE(t.max_firing_s, t.min_firing_s) << t.name;
  }
  EXPECT_LE(sr.total_busy_s(), sr.wall_s * static_cast<double>(sr.tasks.size()));

  const auto cmp = compare_with_schedule(sr, pipe.graph, platform,
                                         mapped.mapping, mapped.schedule);
  EXPECT_GT(cmp.predicted_ii_s, 0.0);
  EXPECT_GT(cmp.measured_ii_s, 0.0);
  EXPECT_GT(cmp.ii_error_ratio, 0.0);
  ASSERT_EQ(cmp.stages.size(), pipe.graph.task_count());
  double pred_share = 0.0, meas_share = 0.0;
  for (const auto& s : cmp.stages) {
    pred_share += s.predicted_share;
    meas_share += s.measured_share;
  }
  EXPECT_NEAR(pred_share, 1.0, 1e-9);
  EXPECT_NEAR(meas_share, 1.0, 1e-9);
  EXPECT_GE(cmp.stage_rank_correlation, -1.0);
  EXPECT_LE(cmp.stage_rank_correlation, 1.0);
  EXPECT_FALSE(format_comparison(cmp).empty());
}

// ---------------------------------------------------------------------------
// Boundary gates (async I/O hooks)
// ---------------------------------------------------------------------------

// A gated task parks (no spin, no inline block) until an external thread
// opens the gate and calls the task's waker — the engine side of the
// async I/O boundary protocol, exercised here without the io subsystem.
TEST(Engine, GatedTaskParksUntilExternalWakeAndBillsIoStall) {
  constexpr std::uint64_t kIters = 8;
  std::atomic<std::uint64_t> credits{0};
  mpsoc::TaskGraph g("gated");
  mpsoc::Task src_task;
  src_task.name = "src";
  src_task.work_ops = 10;
  mpsoc::Task snk_task;
  snk_task.name = "snk";
  snk_task.work_ops = 10;
  const auto src = g.add_task(std::move(src_task));
  const auto snk = g.add_task(std::move(snk_task));
  ASSERT_TRUE(g.add_edge(src, snk, 8).is_ok());
  g.set_body(src, [&credits](mpsoc::TaskFiring& f) {
    credits.fetch_sub(1, std::memory_order_acq_rel);
    f.outputs[0] = mpsoc::Payload{static_cast<std::uint8_t>(f.iteration)};
  });
  g.set_gate(src, [&credits] {
    return credits.load(std::memory_order_acquire) > 0;
  });
  std::atomic<std::uint64_t> sum{0};
  g.set_body(snk, [&sum](mpsoc::TaskFiring& f) {
    sum.fetch_add((*f.inputs[0])[0], std::memory_order_relaxed);
  });

  EngineOptions opts;
  opts.workers = 2;
  Engine engine(opts);
  ASSERT_TRUE(engine.start().is_ok());
  auto sid = engine.submit(g, {0, 1}, kIters);
  ASSERT_TRUE(sid.is_ok());
  auto waker = engine.task_waker(sid.value(), src);
  ASSERT_TRUE(waker.is_ok()) << waker.status().to_text();
  // Drip-feed credits from outside: each grant must wake the parked
  // owner; between grants every worker sleeps (the test would hang, and
  // the deadline below fire, if a wakeup were lost).
  std::thread producer([&, wake = waker.value()] {
    for (std::uint64_t i = 0; i < kIters; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      credits.fetch_add(1, std::memory_order_acq_rel);
      wake();
    }
  });
  ASSERT_TRUE(engine.wait().is_ok());
  producer.join();
  const auto& rep = engine.report(sid.value());
  ASSERT_EQ(rep.outcome, SessionOutcome::kCompleted);
  EXPECT_EQ(sum.load(), kIters * (kIters - 1) / 2);
  EXPECT_GT(rep.tasks[src].io_stalls, 0u);
  EXPECT_GT(rep.tasks[src].io_stall_s, 0.0);
  EXPECT_GT(rep.io_stall_s, 0.0);
  EXPECT_EQ(rep.tasks[snk].io_stalls, 0u) << "ungated task never stalls";
}

// A task that never fires must report its min/max firing time as unset
// (quiet NaN, fired() == false), not 0.0 — zero would read as an
// impossibly fast firing — and format_comparison renders the unset
// columns as '-'. The never-fired state is forced deterministically: the
// source's gate never opens, so neither it nor its starved sink can run
// before the session is cancelled.
TEST(Engine, NeverFiredTaskReportsUnsetFiringTimes) {
  mpsoc::TaskGraph g("gated");
  mpsoc::Task src_task;
  src_task.name = "src";
  src_task.work_ops = 10;
  mpsoc::Task snk_task;
  snk_task.name = "snk";
  snk_task.work_ops = 10;
  const auto src = g.add_task(std::move(src_task));
  const auto snk = g.add_task(std::move(snk_task));
  ASSERT_TRUE(g.add_edge(src, snk, 4).is_ok());
  g.set_body(src, [](mpsoc::TaskFiring& f) {
    f.outputs[0] = mpsoc::Payload{1};
  });
  g.set_gate(src, [] { return false; });  // the I/O never arrives
  g.set_body(snk, [](mpsoc::TaskFiring&) {});

  EngineOptions opts;
  opts.workers = 2;
  Engine engine(opts);
  ASSERT_TRUE(engine.start().is_ok());
  auto sid = engine.submit(g, {0, 1}, 4);
  ASSERT_TRUE(sid.is_ok());
  engine.cancel(sid.value());
  ASSERT_TRUE(engine.wait().is_ok());

  const auto& rep = engine.report(sid.value());
  EXPECT_EQ(rep.outcome, SessionOutcome::kCancelled);
  for (const auto& t : rep.tasks) {
    ASSERT_EQ(t.firings, 0u) << t.name;
    EXPECT_FALSE(t.fired()) << t.name;
    EXPECT_TRUE(std::isnan(t.min_firing_s)) << t.name;
    EXPECT_TRUE(std::isnan(t.max_firing_s)) << t.name;
    EXPECT_DOUBLE_EQ(t.mean_firing_s(), 0.0) << t.name;
  }

  const auto platform = core::device_platform(core::DeviceClass::kVideoCamera);
  const auto cmp =
      compare_with_schedule(rep, g, platform, {0, 1}, mpsoc::Schedule{});
  ASSERT_EQ(cmp.stages.size(), 2u);
  for (const auto& s : cmp.stages) {
    EXPECT_TRUE(std::isnan(s.min_firing_s)) << s.name;
    EXPECT_TRUE(std::isnan(s.max_firing_s)) << s.name;
  }
  // The table renders unset as a right-aligned '-' in a 10-wide column.
  EXPECT_NE(format_comparison(cmp).find("         -"), std::string::npos);
}

TEST(Trace, ComparisonCarriesIoWaitColumn) {
  SessionReport measured;
  measured.graph = "gated";
  measured.iterations = 4;
  measured.wall_s = 0.4;
  TaskStats io_task;
  io_task.name = "src";
  io_task.firings = 4;
  io_task.busy_s = 0.04;
  io_task.io_stalls = 4;
  io_task.io_stall_s = 0.2;
  measured.tasks.push_back(io_task);
  mpsoc::TaskGraph g("gated");
  mpsoc::Task stage;
  stage.name = "src";
  stage.work_ops = 100;
  (void)g.add_task(std::move(stage));
  const auto platform = core::device_platform(core::DeviceClass::kVideoCamera);
  mpsoc::Schedule predicted;
  const auto cmp =
      compare_with_schedule(measured, g, platform, {0}, predicted);
  ASSERT_EQ(cmp.stages.size(), 1u);
  EXPECT_DOUBLE_EQ(cmp.stages[0].io_wait_s, 0.05);
  EXPECT_NE(format_comparison(cmp).find("io-wait"), std::string::npos);
}

TEST(Trace, EvaluateMeasuredFillsDeploymentReport) {
  VideoPipelineConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  auto pipe = make_video_encoder_pipeline(cfg);
  const auto platform = core::device_platform(core::DeviceClass::kVideoCamera);
  auto report = evaluate_measured(pipe.graph, platform,
                                  mpsoc::MapperKind::kHeft, 30.0, 4);
  ASSERT_TRUE(report.is_ok()) << report.status().to_text();
  const auto& r = report.value();
  EXPECT_TRUE(r.has_measurement());
  EXPECT_GT(r.measured_wall_s, 0.0);
  EXPECT_GT(r.measured_throughput_hz, 0.0);
  EXPECT_GT(r.model_error_ratio, 0.0);
  EXPECT_NE(core::report_row(r).find("meas"), std::string::npos);
}

}  // namespace
}  // namespace mmsoc::runtime
