// Tests for the sharded multi-engine front-end: admission control
// (bounded in-flight sessions, reject-with-reason on saturation),
// least-loaded placement over live in-flight counts, dynamic admission
// into running shards, retire-on-complete load accounting (slots free on
// completion and on cancel-retirement), ticketed cancellation, and
// graceful degradation when submissions far exceed capacity.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/pipelines.h"
#include "runtime/shard.h"

namespace mmsoc::runtime {
namespace {

mpsoc::Mapping chain_mapping(std::size_t tasks, std::size_t stride) {
  mpsoc::Mapping m(tasks);
  for (std::size_t t = 0; t < tasks; ++t) m[t] = t % (stride == 0 ? 1 : stride);
  return m;
}

TEST(ShardedEngine, RejectsWithReasonWhenAllShardsSaturated) {
  ShardedEngineOptions opts;
  opts.shards = 2;
  opts.max_sessions_per_shard = 2;
  opts.engine.workers = 1;
  ShardedEngine sharded(opts);

  std::vector<SyntheticPipeline> pipes;
  pipes.reserve(10);
  std::vector<SessionTicket> tickets;
  std::size_t rejected = 0;
  for (int i = 0; i < 10; ++i) {
    pipes.push_back(make_synthetic_chain(3, 200.0));
    auto r = sharded.submit(pipes.back().graph, chain_mapping(3, 1), 20);
    if (r.is_ok()) {
      tickets.push_back(r.value());
    } else {
      ++rejected;
      EXPECT_EQ(r.status().code(), common::StatusCode::kResourceExhausted);
      EXPECT_NE(r.status().message().find("admission reject"),
                std::string::npos);
    }
  }
  EXPECT_EQ(tickets.size(), 4u) << "2 shards x 2 in-flight";
  EXPECT_EQ(rejected, 6u);

  const auto stats = sharded.stats();
  EXPECT_EQ(stats.submitted, 10u);
  EXPECT_EQ(stats.accepted, 4u);
  EXPECT_EQ(stats.rejected, 6u);
  EXPECT_NEAR(stats.reject_rate(), 0.6, 1e-12);

  const auto status = sharded.run();
  ASSERT_TRUE(status.is_ok()) << status.to_text();
  for (const auto t : tickets) {
    EXPECT_EQ(sharded.report(t).outcome, SessionOutcome::kCompleted);
    EXPECT_EQ(sharded.report(t).completed_firings, 60u);
  }
}

TEST(ShardedEngine, LeastLoadedPlacementBalancesShards) {
  ShardedEngineOptions opts;
  opts.shards = 4;
  opts.max_sessions_per_shard = 8;
  ShardedEngine sharded(opts);
  std::vector<SyntheticPipeline> pipes;
  pipes.reserve(12);
  for (int i = 0; i < 12; ++i) {
    pipes.push_back(make_synthetic_chain(2, 100.0));
    auto r = sharded.submit(pipes.back().graph, chain_mapping(2, 1), 4);
    ASSERT_TRUE(r.is_ok()) << r.status().to_text();
  }
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    EXPECT_EQ(sharded.session_count(s), 3u) << "shard " << s;
  }
  EXPECT_EQ(sharded.total_sessions(), 12u);
}

TEST(ShardedEngine, SaturationDegradesGracefully) {
  // Submissions >> capacity: the accepted subset completes with correct
  // output, the overflow is rejected, nothing hangs or oversubscribes.
  ShardedEngineOptions opts;
  opts.shards = 4;
  opts.max_sessions_per_shard = 8;
  opts.engine.workers = 2;
  opts.engine.channel_capacity = 2;
  ShardedEngine sharded(opts);

  // Reference digest: one isolated run of the same chain.
  std::uint64_t reference = 0;
  {
    auto pipe = make_synthetic_chain(4, 300.0);
    auto r = run_pipeline(pipe.graph, chain_mapping(4, 1), 16);
    ASSERT_TRUE(r.is_ok());
    reference = pipe.sink->digest.load();
  }

  constexpr int kSubmitted = 128;
  std::vector<SyntheticPipeline> pipes;
  pipes.reserve(kSubmitted);
  std::vector<SessionTicket> tickets;
  for (int i = 0; i < kSubmitted; ++i) {
    pipes.push_back(make_synthetic_chain(4, 300.0));
    auto r = sharded.submit(pipes.back().graph, chain_mapping(4, 2), 16);
    if (r.is_ok()) tickets.push_back(r.value());
  }
  EXPECT_EQ(tickets.size(), 32u) << "4 shards x 8 in-flight";
  EXPECT_EQ(sharded.stats().rejected,
            static_cast<std::uint64_t>(kSubmitted) - 32u);

  const auto status = sharded.run();
  ASSERT_TRUE(status.is_ok()) << status.to_text();
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const auto& rep = sharded.report(tickets[i]);
    EXPECT_EQ(rep.outcome, SessionOutcome::kCompleted) << "ticket " << i;
    EXPECT_EQ(pipes[i].sink->digest.load(), reference)
        << "accepted session " << i << " output diverged under load";
  }
}

TEST(ShardedEngine, CancelByTicketWhileRunning) {
  ShardedEngineOptions opts;
  opts.shards = 2;
  opts.max_sessions_per_shard = 4;
  opts.engine.workers = 1;
  ShardedEngine sharded(opts);

  auto endless = make_synthetic_chain(3, 20000.0);
  auto quick = make_synthetic_chain(3, 200.0);
  auto t_endless =
      sharded.submit(endless.graph, chain_mapping(3, 1), 200'000'000);
  auto t_quick = sharded.submit(quick.graph, chain_mapping(3, 1), 10);
  ASSERT_TRUE(t_endless.is_ok());
  ASSERT_TRUE(t_quick.is_ok());
  EXPECT_NE(t_endless.value().shard, t_quick.value().shard)
      << "least-loaded placement must spread the two sessions";

  ASSERT_TRUE(sharded.start().is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sharded.cancel(t_endless.value());
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(sharded.wait().is_ok());
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(30));

  EXPECT_EQ(sharded.report(t_endless.value()).outcome,
            SessionOutcome::kCancelled);
  EXPECT_EQ(sharded.report(t_quick.value()).outcome,
            SessionOutcome::kCompleted);
}

TEST(ShardedEngine, PerSessionDeadlinePropagatesThroughSubmit) {
  ShardedEngineOptions opts;
  opts.shards = 1;
  opts.max_sessions_per_shard = 2;
  opts.engine.workers = 1;
  ShardedEngine sharded(opts);
  auto endless = make_synthetic_chain(2, 20000.0);
  SessionOptions deadline;
  deadline.timeout = std::chrono::milliseconds(25);
  auto t = sharded.submit(endless.graph, chain_mapping(2, 1), 200'000'000,
                          deadline);
  ASSERT_TRUE(t.is_ok());
  ASSERT_TRUE(sharded.run().is_ok());
  EXPECT_EQ(sharded.report(t.value()).outcome,
            SessionOutcome::kDeadlineExceeded);
}

TEST(ShardedEngine, LifecycleErrors) {
  ShardedEngineOptions opts;
  opts.shards = 2;
  opts.engine.workers = 1;
  ShardedEngine sharded(opts);
  EXPECT_FALSE(sharded.run().is_ok())
      << "a blocking run of zero admitted sessions must fail";

  ShardedEngine sharded2(opts);
  auto pipe = make_synthetic_chain(2, 100.0);
  ASSERT_TRUE(sharded2.submit(pipe.graph, chain_mapping(2, 1), 5).is_ok());
  ASSERT_TRUE(sharded2.start().is_ok());
  // Dynamic admission: submits keep landing after start()...
  auto late = make_synthetic_chain(2, 100.0);
  auto ticket = sharded2.submit(late.graph, chain_mapping(2, 1), 5);
  ASSERT_TRUE(ticket.is_ok())
      << "submit into running shards must be admitted: "
      << ticket.status().to_text();
  ASSERT_TRUE(sharded2.wait().is_ok());
  EXPECT_EQ(sharded2.report(ticket.value()).outcome,
            SessionOutcome::kCompleted);
  // ...but not once wait() drained the shards. Lifecycle misuse is a
  // failure, not an admission reject: the overload metric stays clean.
  auto gone = make_synthetic_chain(2, 100.0);
  EXPECT_FALSE(sharded2.submit(gone.graph, chain_mapping(2, 1), 5).is_ok())
      << "submit after wait must be rejected";
  EXPECT_EQ(sharded2.stats().failed, 1u);
  EXPECT_EQ(sharded2.stats().rejected, 0u);
  EXPECT_NEAR(sharded2.stats().reject_rate(), 0.0, 1e-12);
}

TEST(ShardedEngine, DynamicAdmissionIntoRunningShards) {
  // Start the front-end with zero traffic, then pour sessions in: every
  // one must be admitted onto a live shard and complete with the same
  // digest as an isolated run.
  ShardedEngineOptions opts;
  opts.shards = 2;
  opts.max_sessions_per_shard = 8;
  opts.engine.workers = 2;
  ShardedEngine sharded(opts);
  ASSERT_TRUE(sharded.start().is_ok()) << "idle shards must start and park";

  std::uint64_t reference = 0;
  {
    auto pipe = make_synthetic_chain(4, 300.0);
    ASSERT_TRUE(run_pipeline(pipe.graph, chain_mapping(4, 1), 16).is_ok());
    reference = pipe.sink->digest.load();
  }

  std::vector<SyntheticPipeline> pipes;
  pipes.reserve(10);
  std::vector<SessionTicket> tickets;
  for (int i = 0; i < 10; ++i) {
    pipes.push_back(make_synthetic_chain(4, 300.0));
    auto r = sharded.submit(pipes.back().graph, chain_mapping(4, 2), 16);
    ASSERT_TRUE(r.is_ok()) << r.status().to_text();
    tickets.push_back(r.value());
  }
  ASSERT_TRUE(sharded.wait().is_ok());
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    EXPECT_EQ(sharded.report(tickets[i]).outcome, SessionOutcome::kCompleted);
    EXPECT_EQ(pipes[i].sink->digest.load(), reference)
        << "dynamically admitted session " << i << " diverged";
  }
  const auto stats = sharded.stats();
  EXPECT_EQ(stats.accepted, 10u);
  EXPECT_EQ(stats.completed, 10u);
}

TEST(ShardedEngine, CompletionFreesAdmissionSlot) {
  // Retire-on-complete load accounting: with a single one-session slot,
  // a second submit must be admitted once the first session finishes —
  // not rejected against a stale in-flight count.
  ShardedEngineOptions opts;
  opts.shards = 1;
  opts.max_sessions_per_shard = 1;
  opts.engine.workers = 1;
  ShardedEngine sharded(opts);
  ASSERT_TRUE(sharded.start().is_ok());

  auto first = make_synthetic_chain(2, 100.0);
  auto t1 = sharded.submit(first.graph, chain_mapping(2, 1), 5);
  ASSERT_TRUE(t1.is_ok());
  // Wait for the slot to free (the completion callback fires from a
  // worker thread shortly after the last firing).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (sharded.stats().completed < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "completion never decremented the in-flight count";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(sharded.inflight(0), 0u);

  auto second = make_synthetic_chain(2, 100.0);
  auto t2 = sharded.submit(second.graph, chain_mapping(2, 1), 5);
  ASSERT_TRUE(t2.is_ok())
      << "slot freed by completion must be reusable: "
      << t2.status().to_text();
  ASSERT_TRUE(sharded.wait().is_ok());
  EXPECT_EQ(sharded.report(t2.value()).outcome, SessionOutcome::kCompleted);
  EXPECT_EQ(sharded.stats().completed, 2u);
  EXPECT_EQ(sharded.stats().rejected, 0u);
}

TEST(ShardedEngine, CancelFreesAdmissionSlotAfterRetirement) {
  // A cancelled session returns its slot once its tasks fully retire —
  // the in-flight count tracks capacity consumption, not submissions.
  ShardedEngineOptions opts;
  opts.shards = 1;
  opts.max_sessions_per_shard = 1;
  opts.engine.workers = 1;
  ShardedEngine sharded(opts);
  ASSERT_TRUE(sharded.start().is_ok());
  auto endless = make_synthetic_chain(3, 20000.0);
  auto t = sharded.submit(endless.graph, chain_mapping(3, 1), 200'000'000);
  ASSERT_TRUE(t.is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sharded.cancel(t.value());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (sharded.inflight(0) != 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "retirement never freed the admission slot";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto next = make_synthetic_chain(2, 100.0);
  EXPECT_TRUE(sharded.submit(next.graph, chain_mapping(2, 1), 5).is_ok());
  ASSERT_TRUE(sharded.wait().is_ok());
  EXPECT_EQ(sharded.report(t.value()).outcome, SessionOutcome::kCancelled);
}

TEST(ShardedEngine, InvalidGraphCountsAsFailureNotReject) {
  ShardedEngineOptions opts;
  opts.shards = 1;
  ShardedEngine sharded(opts);
  auto bodyless = mpsoc::TaskGraph("no-bodies");
  mpsoc::Task t;
  t.name = "x";
  (void)bodyless.add_task(t);
  EXPECT_FALSE(sharded.submit(bodyless, chain_mapping(1, 1), 5).is_ok());
  const auto stats = sharded.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(ShardedEngine, DestructorWhileRunningCancelsAllShards) {
  const auto t0 = std::chrono::steady_clock::now();
  // Graphs outlive the engine: workers may still be firing when the
  // ShardedEngine destructor starts cancelling.
  auto a = make_synthetic_chain(3, 20000.0);
  auto b = make_synthetic_chain(3, 20000.0);
  {
    ShardedEngineOptions opts;
    opts.shards = 2;
    opts.max_sessions_per_shard = 2;
    opts.engine.workers = 1;
    opts.engine.channel_capacity = 1;
    ShardedEngine sharded(opts);
    ASSERT_TRUE(
        sharded.submit(a.graph, chain_mapping(3, 1), 200'000'000).is_ok());
    ASSERT_TRUE(
        sharded.submit(b.graph, chain_mapping(3, 1), 200'000'000).is_ok());
    ASSERT_TRUE(sharded.start().is_ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(30));
}

// An auto pool size makes the per-shard CPU range unknowable; silently
// running unpinned would violate the pinning contract, so start() fails.
TEST(ShardedEngine, PinShardCpuRangesRejectsAutoWorkerCount) {
  ShardedEngineOptions opts;
  opts.shards = 2;
  opts.engine.workers = 0;  // auto
  opts.pin_shard_cpu_ranges = true;
  ShardedEngine sharded(opts);
  const auto status = sharded.start();
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), common::StatusCode::kInvalidArgument);
}

// Per-socket shards: each shard's workers pin to a disjoint CPU range
// (shard i starts at CPU i * workers, wrapped mod hardware threads).
TEST(ShardedEngine, PinShardCpuRangesRunsToCompletionOrFailsLoudly) {
  ShardedEngineOptions opts;
  opts.shards = 2;
  opts.engine.workers = 2;  // explicit: the range width must be known
  opts.pin_shard_cpu_ranges = true;
  ShardedEngine sharded(opts);
  std::vector<SyntheticPipeline> pipes;
  std::vector<SessionTicket> tickets;
  pipes.reserve(4);
  for (int i = 0; i < 4; ++i) {
    pipes.push_back(make_synthetic_chain(3, 500.0));
    auto r = sharded.submit(pipes.back().graph, chain_mapping(3, 1), 12);
    ASSERT_TRUE(r.is_ok()) << r.status().to_text();
    tickets.push_back(r.value());
  }
  const auto status = sharded.run();
#if defined(__linux__)
  ASSERT_TRUE(status.is_ok()) << status.to_text();
  for (const auto t : tickets) {
    EXPECT_EQ(sharded.report(t).outcome, SessionOutcome::kCompleted);
  }
  for (const auto& pipe : pipes) {
    EXPECT_EQ(pipe.sink->tokens.load(), 12u);
  }
#else
  // Unsupported platforms must surface a Status, never silently unpin.
  EXPECT_FALSE(status.is_ok());
#endif
}

// stats() promises a *consistent* snapshot: accepted == completed +
// inflight in every observation, even while worker threads are
// completing sessions and a front-end thread keeps submitting. A racy
// two-read implementation (accepted now, completed a little later)
// fails this within a few iterations.
TEST(ShardedEngine, StatsSnapshotBalancesWhileSessionsChurn) {
  ShardedEngineOptions opts;
  opts.shards = 2;
  opts.max_sessions_per_shard = 4;
  opts.engine.workers = 1;
  ShardedEngine sharded(opts);
  ASSERT_TRUE(sharded.start().is_ok());

  constexpr int kSubmits = 48;
  std::atomic<bool> done{false};
  std::thread submitter([&] {
    // Keep the books moving: short sessions, back-to-back, with rejects
    // mixed in when the shards saturate.
    std::vector<SyntheticPipeline> pipes;
    pipes.reserve(kSubmits);
    for (int i = 0; i < kSubmits; ++i) {
      pipes.push_back(make_synthetic_chain(2, 50.0));
      (void)sharded.submit(pipes.back().graph, chain_mapping(2, 1), 3);
      std::this_thread::yield();
    }
    (void)sharded.wait();
    done.store(true, std::memory_order_release);
  });

  std::uint64_t observations = 0;
  while (!done.load(std::memory_order_acquire)) {
    const auto s = sharded.stats();
    ASSERT_EQ(s.accepted, s.completed + s.inflight)
        << "inconsistent snapshot after " << observations << " observations";
    ASSERT_LE(s.inflight,
              static_cast<std::uint64_t>(opts.shards) *
                  opts.max_sessions_per_shard);
    ASSERT_EQ(s.submitted, s.accepted + s.rejected);
    ++observations;
  }
  submitter.join();
  EXPECT_GT(observations, 0u);

  const auto end = sharded.stats();
  EXPECT_EQ(end.submitted, static_cast<std::uint64_t>(kSubmits));
  EXPECT_EQ(end.inflight, 0u);
  EXPECT_EQ(end.accepted, end.completed);
}

}  // namespace
}  // namespace mmsoc::runtime
