// Fault injection + failure recovery: the chaos layer (fault.h), the
// retry/backoff machinery inside the boundary adapters, failure
// escalation into the engine (kFailed / kQuarantined), and graceful
// degradation under admission overload. Runs in the ThreadSanitizer
// matrix: retry timers, watchdog quarantine, and cancel-during-retry
// are exactly the interleavings that never crash an ordinary run.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "runtime/engine.h"
#include "runtime/fault.h"
#include "runtime/io.h"
#include "runtime/pipelines.h"
#include "runtime/shard.h"

namespace {

using namespace mmsoc;
using namespace mmsoc::runtime;
using common::Result;
using common::Status;
using common::StatusCode;
using mpsoc::Payload;
using mpsoc::TaskGraph;
using mpsoc::TaskId;

Payload unit_payload(std::uint64_t i, std::size_t size = 32) {
  Payload p(size);
  for (std::size_t k = 0; k < size; ++k) {
    p[k] = static_cast<std::uint8_t>(i * 131 + k);
  }
  return p;
}

mpsoc::Task task(const char* name, double work_ops) {
  mpsoc::Task t;
  t.name = name;
  t.work_ops = work_ops;
  return t;
}

/// Fast retry policy for tests: microsecond-scale backoff, determinism
/// intact.
RetryPolicy fast_retry(std::uint32_t max_attempts = 4) {
  RetryPolicy r;
  r.max_attempts = max_attempts;
  r.initial_backoff_us = 50.0;
  r.max_backoff_us = 400.0;
  return r;
}

// ---------------------------------------------------------------------------
// Deterministic decision core
// ---------------------------------------------------------------------------

TEST(FaultInjector, RollIsDeterministicInRangeAndSaltSeparated) {
  double mean = 0.0;
  for (std::uint64_t u = 0; u < 4096; ++u) {
    const double a = FaultInjector::roll(7, 1, u, 0, 0x5eed);
    const double b = FaultInjector::roll(7, 1, u, 0, 0x5eed);
    ASSERT_EQ(a, b) << "same coordinates must roll the same value";
    ASSERT_GE(a, 0.0);
    ASSERT_LT(a, 1.0);
    mean += a;
  }
  mean /= 4096.0;
  EXPECT_NEAR(mean, 0.5, 0.05) << "rolls should be roughly uniform";
  // Distinct salts / seeds / attempts decorrelate the streams.
  EXPECT_NE(FaultInjector::roll(7, 1, 3, 0, 0x5eed),
            FaultInjector::roll(7, 1, 3, 0, 0x5eee));
  EXPECT_NE(FaultInjector::roll(7, 1, 3, 0, 0x5eed),
            FaultInjector::roll(8, 1, 3, 0, 0x5eed));
  EXPECT_NE(FaultInjector::roll(7, 1, 3, 0, 0x5eed),
            FaultInjector::roll(7, 1, 3, 1, 0x5eed));
}

TEST(RetryPolicy, BackoffIsCappedMonotoneWithBoundedDeterministicJitter) {
  RetryPolicy r;
  r.max_attempts = 8;
  r.initial_backoff_us = 100.0;
  r.multiplier = 2.0;
  r.max_backoff_us = 1000.0;
  r.jitter = 0.25;
  r.seed = 42;
  double prev_base = 0.0;
  for (std::uint32_t attempt = 1; attempt <= 8; ++attempt) {
    const double d1 = r.backoff_us(5, attempt);
    const double d2 = r.backoff_us(5, attempt);
    EXPECT_EQ(d1, d2) << "jitter must be a pure hash, not an RNG stream";
    const double base =
        std::min(100.0 * std::pow(2.0, attempt - 1), r.max_backoff_us);
    EXPECT_GE(d1, base * (1.0 - r.jitter) - 1e-9);
    EXPECT_LE(d1, base * (1.0 + r.jitter) + 1e-9);
    EXPECT_GE(base, prev_base) << "pre-jitter backoff grows monotonically";
    prev_base = base;
  }
  // Jitterless policy is exact.
  r.jitter = 0.0;
  EXPECT_EQ(r.backoff_us(0, 1), 100.0);
  EXPECT_EQ(r.backoff_us(0, 2), 200.0);
  EXPECT_EQ(r.backoff_us(0, 5), 1000.0) << "capped at max_backoff_us";
  EXPECT_EQ(r.backoff_us(0, 8), 1000.0);
}

TEST(IoErrorSummary, RecordAndMergeKeepTheEpisodeShape) {
  IoErrorSummary a;
  EXPECT_FALSE(a.any());
  a.record(4, Status(StatusCode::kUnavailable, "first"));
  a.record(9, Status(StatusCode::kInternal, "last"));
  a.retries = 1;
  EXPECT_TRUE(a.any());
  EXPECT_EQ(a.errors, 2u);
  EXPECT_EQ(a.first_unit, 4u);
  EXPECT_EQ(a.last_unit, 9u);
  EXPECT_EQ(a.first_status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(a.last_status.code(), StatusCode::kInternal);

  IoErrorSummary b;
  b.record(2, Status(StatusCode::kCorruptData, "earlier"));
  b.retries = 2;
  a.merge(b);
  EXPECT_EQ(a.errors, 3u);
  EXPECT_EQ(a.retries, 3u);
  EXPECT_EQ(a.first_unit, 2u) << "merge keeps the globally first error";
  EXPECT_EQ(a.first_status.code(), StatusCode::kCorruptData);
  EXPECT_EQ(a.last_unit, 9u);

  IoErrorSummary empty;
  a.merge(empty);
  EXPECT_EQ(a.errors, 3u) << "merging an empty summary changes nothing";
}

// ---------------------------------------------------------------------------
// Injected schedules: seeded, reproducible, corruption included
// ---------------------------------------------------------------------------

/// Replay `units` reads through a wrapped always-succeeding inner
/// endpoint, retrying injected transient errors like the adapter would
/// (same unit, next attempt), and record each op's outcome code.
std::vector<StatusCode> replay_reads(FaultInjector& inj, std::size_t endpoint,
                                     TryReadFn wrapped, std::uint64_t units,
                                     std::uint32_t max_attempts) {
  (void)endpoint;
  std::vector<StatusCode> outcomes;
  for (std::uint64_t u = 0; u < units; ++u) {
    for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
      auto got = wrapped(u);
      outcomes.push_back(got.is_ok() ? StatusCode::kOk : got.status().code());
      if (got.is_ok() || got.status().code() != StatusCode::kUnavailable) {
        break;  // success, or a non-retryable code: move on
      }
    }
  }
  return outcomes;
}

TEST(FaultInjector, TransientScheduleIsIdenticalAcrossInjectorsWithOneSeed) {
  FaultPlan plan;
  plan.read_error_rate = 0.3;
  plan.burst_length = 2;
  constexpr std::uint64_t kUnits = 64;

  auto run = [&](std::uint64_t seed) {
    FaultInjector inj(seed);
    const std::size_t ep = inj.add_endpoint("disk", plan);
    auto wrapped = inj.wrap_read(ep, [](std::uint64_t i) {
      return Result<Payload>(unit_payload(i));
    });
    auto outcomes = replay_reads(inj, ep, std::move(wrapped), kUnits, 4);
    return std::pair(outcomes, inj.stats(ep));
  };

  const auto [a, sa] = run(1234);
  const auto [b, sb] = run(1234);
  EXPECT_EQ(a, b) << "same seed must produce the identical fault schedule";
  EXPECT_EQ(sa.transient_errors, sb.transient_errors);
  EXPECT_EQ(sa.ops, sb.ops);
  EXPECT_GT(sa.transient_errors, 0u) << "30% over 64 units must inject";

  const auto [c, sc] = run(9999);
  EXPECT_NE(a, c) << "a different seed must produce a different schedule";
  // Burst grouping: with burst_length 2, units 2k and 2k+1 share the
  // first-attempt roll, so first-attempt outcomes come in pairs.
  FaultInjector probe(1234);
  const std::size_t ep = probe.add_endpoint("disk", plan);
  for (std::uint64_t g = 0; g < kUnits / 2; ++g) {
    const bool lo = FaultInjector::roll(1234, ep, g, 0, 0x7261'6e73'5244ull) <
                    plan.read_error_rate;
    (void)lo;  // the pairing itself is asserted via schedule equality above
  }
}

TEST(FaultInjector, CorruptionIsDeterministicCountedAndDistinct) {
  FaultPlan plan;
  plan.corruption_rate = 1.0;  // corrupt every successful read
  auto corrupt_once = [&](std::uint64_t seed, std::uint64_t unit) {
    FaultInjector inj(seed);
    const std::size_t ep = inj.add_endpoint("net", plan);
    auto wrapped = inj.wrap_read(ep, [](std::uint64_t i) {
      return Result<Payload>(unit_payload(i, 96));
    });
    auto got = wrapped(unit);
    EXPECT_TRUE(got.is_ok());
    EXPECT_EQ(inj.stats(ep).corruptions, 1u);
    return got.value();
  };
  const Payload a = corrupt_once(5, 3);
  const Payload b = corrupt_once(5, 3);
  EXPECT_EQ(a, b) << "bit rot must be reproducible per seed";
  EXPECT_NE(a, unit_payload(3, 96)) << "and must actually change the bytes";
}

TEST(FaultInjector, StuckAndPermanentWindowsUseTheRightCodes) {
  FaultPlan plan;
  plan.stuck_at_unit = 3;
  plan.fail_at_unit = 5;
  FaultInjector inj(1);
  const std::size_t ep = inj.add_endpoint("dev", plan);
  auto wrapped = inj.wrap_read(
      ep, [](std::uint64_t i) { return Result<Payload>(unit_payload(i)); });
  EXPECT_TRUE(wrapped(0).is_ok());
  EXPECT_EQ(wrapped(3).status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(wrapped(4).status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(wrapped(5).status().code(), StatusCode::kCorruptData)
      << "fail_at_unit wins over stuck_at_unit";
  const auto stats = inj.stats(ep);
  EXPECT_EQ(stats.stuck_ops, 2u);
  EXPECT_EQ(stats.permanent_errors, 1u);
  EXPECT_EQ(stats.injected(), 3u);
  EXPECT_EQ(inj.endpoint_name(ep), "dev");
}

// ---------------------------------------------------------------------------
// Boundary recovery through the engine: retry -> recover / fail / park
// ---------------------------------------------------------------------------

/// Two-task boundary graph (gated source -> collecting sink) + the
/// engine plumbing every recovery test needs. The sink task has a
/// single owner, so `got` needs no lock.
struct BoundaryRig {
  TaskGraph g{"fault-rig"};
  TaskId src = 0;
  TaskId snk = 0;
  std::vector<Payload> got;

  BoundaryRig() {
    src = g.add_task(task("src", 10));
    snk = g.add_task(task("snk", 10));
    EXPECT_TRUE(g.add_edge(src, snk, 32).is_ok());
    g.set_body(snk, [this](mpsoc::TaskFiring& f) {
      got.push_back(*f.inputs[0]);
    });
  }

  std::uint32_t crc() const {
    common::Crc32 c;
    for (const auto& p : got) c.update(p);
    return c.value();
  }
};

/// Wire failure handler + error observer + waker, mirroring what
/// pipelines.cpp does for its sessions.
void wire(Engine& engine, std::size_t sid, AsyncSource& source, TaskId src,
          std::uint64_t units) {
  source.set_failure_handler(
      [&engine, sid](std::uint64_t unit, const Status& status) {
        engine.fail_session(sid, unit, status);
      });
  source.set_error_observer([&engine, sid](std::uint64_t unit,
                                           const Status& status,
                                           bool will_retry) {
    engine.record_io_error(sid, unit, status, will_retry);
  });
  auto waker = engine.task_waker(sid, src);
  ASSERT_TRUE(waker.is_ok());
  source.attach(units, std::move(waker.value()));
}

TEST(FaultRecovery, TransientErrorsRetryToCompletionWithExactAccounting) {
  constexpr std::uint64_t kUnits = 18;
  // Reference: what a clean run delivers.
  std::uint32_t clean_crc = 0;
  {
    common::Crc32 c;
    for (std::uint64_t i = 0; i < kUnits; ++i) c.update(unit_payload(i));
    clean_crc = c.value();
  }

  IoContext io;
  // Every third unit fails its first attempt, succeeds on retry.
  std::atomic<std::uint64_t> injected{0};
  auto flaky = [&injected](std::uint64_t i) -> Result<Payload> {
    static thread_local std::uint64_t last = ~std::uint64_t{0};
    static thread_local std::uint64_t attempt = 0;
    if (last == i) {
      ++attempt;
    } else {
      last = i;
      attempt = 0;
    }
    if (i % 3 == 0 && attempt == 0) {
      injected.fetch_add(1);
      return Result<Payload>(Status(StatusCode::kUnavailable,
                                    "transient at " + std::to_string(i)));
    }
    return Result<Payload>(unit_payload(i));
  };
  AsyncSource source(io, TryReadFn(flaky), fast_retry(), /*depth=*/2);
  BoundaryRig rig;
  source.bind(rig.g, rig.src);

  EngineOptions eopts;
  eopts.workers = 2;
  Engine engine(eopts);
  ASSERT_TRUE(engine.start().is_ok());
  auto sid = engine.submit(rig.g, {0, 1}, kUnits);
  ASSERT_TRUE(sid.is_ok());
  wire(engine, sid.value(), source, rig.src, kUnits);
  ASSERT_TRUE(engine.wait().is_ok());

  const auto& rep = engine.report(sid.value());
  EXPECT_EQ(rep.outcome, SessionOutcome::kCompleted)
      << "transient faults within the retry budget must not fail a session";
  EXPECT_EQ(rig.got.size(), kUnits);
  EXPECT_EQ(rig.crc(), clean_crc)
      << "recovered output must be byte-identical to a clean run";

  const std::uint64_t expect_errors = injected.load();
  EXPECT_EQ(expect_errors, (kUnits + 2) / 3);
  const auto stats = source.stats();
  EXPECT_EQ(stats.errors, expect_errors);
  EXPECT_EQ(stats.retries, expect_errors) << "each error retried exactly once";
  EXPECT_EQ(stats.recovered, expect_errors);
  // The per-session error summary in the report tells the same story.
  EXPECT_EQ(rep.io_errors.errors, expect_errors);
  EXPECT_EQ(rep.io_errors.retries, expect_errors);
  EXPECT_EQ(rep.io_errors.first_unit, 0u);
  EXPECT_EQ(rep.io_errors.last_unit, ((kUnits - 1) / 3) * 3);
  EXPECT_TRUE(source.failure().is_ok());
}

TEST(FaultRecovery, RetryExhaustionFailsSessionButCoResidentCompletes) {
  constexpr std::uint64_t kUnits = 12;
  constexpr std::uint64_t kBadUnit = 3;
  IoContext io;

  auto broken = [](std::uint64_t i) -> Result<Payload> {
    if (i == kBadUnit) {
      return Result<Payload>(
          Status(StatusCode::kUnavailable, "device refuses unit 3"));
    }
    return Result<Payload>(unit_payload(i));
  };
  AsyncSource bad_source(io, TryReadFn(broken), fast_retry(3), 2);
  BoundaryRig bad_rig;
  bad_source.bind(bad_rig.g, bad_rig.src);

  AsyncSource good_source(
      io,
      TryReadFn([](std::uint64_t i) { return Result<Payload>(unit_payload(i)); }),
      fast_retry(3), 2);
  BoundaryRig good_rig;
  good_source.bind(good_rig.g, good_rig.src);

  EngineOptions eopts;
  eopts.workers = 2;
  Engine engine(eopts);
  ASSERT_TRUE(engine.start().is_ok());
  auto bad = engine.submit(bad_rig.g, {0, 1}, kUnits);
  auto good = engine.submit(good_rig.g, {1, 0}, kUnits);
  ASSERT_TRUE(bad.is_ok());
  ASSERT_TRUE(good.is_ok());
  wire(engine, bad.value(), bad_source, bad_rig.src, kUnits);
  wire(engine, good.value(), good_source, good_rig.src, kUnits);
  ASSERT_TRUE(engine.wait().is_ok()) << "a failed session must not wedge wait()";

  const auto& brep = engine.report(bad.value());
  EXPECT_EQ(brep.outcome, SessionOutcome::kFailed);
  EXPECT_EQ(brep.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(brep.failed_unit, kBadUnit)
      << "the report must carry the failing unit index";
  EXPECT_NE(brep.status.message().find("unit 3"), std::string::npos)
      << brep.status.message();
  EXPECT_EQ(brep.io_errors.errors, 3u) << "one per attempt";
  EXPECT_EQ(brep.io_errors.retries, 2u) << "max_attempts 3 = 2 retries";
  EXPECT_EQ(bad_source.failed_unit(), kBadUnit);
  EXPECT_FALSE(bad_source.failure().is_ok());

  const auto& grep_ = engine.report(good.value());
  EXPECT_EQ(grep_.outcome, SessionOutcome::kCompleted)
      << "the co-resident session must be untouched by its neighbour's fault";
  EXPECT_EQ(grep_.io_errors.errors, 0u);
  common::Crc32 clean;
  for (std::uint64_t i = 0; i < kUnits; ++i) clean.update(unit_payload(i));
  EXPECT_EQ(good_rig.crc(), clean.value())
      << "co-resident output must stay byte-identical to a clean run";
}

TEST(FaultRecovery, PermanentErrorFailsImmediatelyWithoutRetry) {
  constexpr std::uint64_t kUnits = 8;
  IoContext io;
  auto dying = [](std::uint64_t i) -> Result<Payload> {
    if (i == 2) {
      return Result<Payload>(Status(StatusCode::kCorruptData, "bad sector"));
    }
    return Result<Payload>(unit_payload(i));
  };
  AsyncSource source(io, TryReadFn(dying), fast_retry(), 2);
  BoundaryRig rig;
  source.bind(rig.g, rig.src);

  EngineOptions eopts;
  eopts.workers = 1;
  Engine engine(eopts);
  ASSERT_TRUE(engine.start().is_ok());
  auto sid = engine.submit(rig.g, {0, 0}, kUnits);
  ASSERT_TRUE(sid.is_ok());
  wire(engine, sid.value(), source, rig.src, kUnits);
  ASSERT_TRUE(engine.wait().is_ok());

  const auto& rep = engine.report(sid.value());
  EXPECT_EQ(rep.outcome, SessionOutcome::kFailed);
  EXPECT_EQ(rep.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(rep.failed_unit, 2u);
  EXPECT_EQ(rep.io_errors.errors, 1u);
  EXPECT_EQ(rep.io_errors.retries, 0u)
      << "permanent errors must never burn retry budget";
  EXPECT_EQ(source.stats().retries, 0u);
}

// Regression: a stopped IoContext used to fail *open* — the session
// drained on empty payloads and reported kCompleted, silently losing
// data. With the failure plumbing wired it must surface kUnavailable
// (outcome kFailed) with the failing unit, while still draining.
TEST(FailOpen, StoppedContextSurfacesUnavailableInsteadOfSilentSuccess) {
  constexpr std::uint64_t kUnits = 6;
  IoContext io;
  AsyncSource source(
      io,
      TryReadFn([](std::uint64_t i) { return Result<Payload>(unit_payload(i)); }),
      fast_retry(), 2);
  BoundaryRig rig;
  source.bind(rig.g, rig.src);

  EngineOptions eopts;
  eopts.workers = 1;
  Engine engine(eopts);
  ASSERT_TRUE(engine.start().is_ok());
  auto sid = engine.submit(rig.g, {0, 0}, kUnits);
  ASSERT_TRUE(sid.is_ok());
  io.stop();  // the device side dies before the session is wired
  wire(engine, sid.value(), source, rig.src, kUnits);
  ASSERT_TRUE(engine.wait().is_ok()) << "drain must not wedge";

  const auto& rep = engine.report(sid.value());
  EXPECT_EQ(rep.outcome, SessionOutcome::kFailed)
      << "a dead I/O context must never masquerade as success";
  EXPECT_EQ(rep.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(rep.status.message().find("stopped"), std::string::npos)
      << rep.status.message();
  EXPECT_FALSE(source.failure().is_ok());
}

// ---------------------------------------------------------------------------
// Watchdog escalation: detect -> quarantine, neighbours keep serving
// ---------------------------------------------------------------------------

TEST(Watchdog, QuarantinesWedgedSessionWhileNeighbourCompletes) {
  constexpr std::uint64_t kUnits = 16;
  TelemetryOptions topts;
  topts.collect_period_ms = 0;  // tests drive the watchdog manually
  topts.unit_sample_period = 0;
  topts.watchdog_periods = 2;
  topts.watchdog_quarantine_periods = 2;
  Telemetry tel(topts);

  IoContext io;
  // The wedged device: delivers two units, then reports stuck forever.
  auto stuck_read = [](std::uint64_t i) -> Result<Payload> {
    if (i >= 2) {
      return Result<Payload>(
          Status(StatusCode::kResourceExhausted, "device wedged"));
    }
    return Result<Payload>(unit_payload(i));
  };
  AsyncSource stuck_source(io, TryReadFn(stuck_read), fast_retry(), 2);
  BoundaryRig stuck_rig;
  stuck_source.bind(stuck_rig.g, stuck_rig.src);

  AsyncSource good_source(
      io,
      TryReadFn([](std::uint64_t i) { return Result<Payload>(unit_payload(i)); }),
      fast_retry(), 2);
  BoundaryRig good_rig;
  good_source.bind(good_rig.g, good_rig.src);

  EngineOptions eopts;
  eopts.workers = 2;
  eopts.telemetry = &tel;
  Engine engine(eopts);
  ASSERT_TRUE(engine.start().is_ok());
  auto wedged = engine.submit(stuck_rig.g, {0, 1}, kUnits);
  auto fine = engine.submit(good_rig.g, {1, 0}, kUnits);
  ASSERT_TRUE(wedged.is_ok());
  ASSERT_TRUE(fine.is_ok());
  wire(engine, wedged.value(), stuck_source, stuck_rig.src, kUnits);
  wire(engine, fine.value(), good_source, good_rig.src, kUnits);

  // Drive the watchdog until it escalates: 2 stagnant periods to flag,
  // 2 more to quarantine. Extra polls are harmless (progress re-arms).
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (engine.stall_recoveries().empty() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    tel.poll_watchdogs();
  }
  ASSERT_TRUE(engine.wait().is_ok())
      << "quarantine must unwedge the engine, not wedge wait()";

  const auto recoveries = engine.stall_recoveries();
  ASSERT_EQ(recoveries.size(), 1u);
  EXPECT_EQ(recoveries[0].session, wedged.value());
  EXPECT_EQ(recoveries[0].graph, "fault-rig");
  EXPECT_GE(recoveries[0].stagnant_periods, 4);
  EXPECT_FALSE(recoveries[0].dump.empty());
  EXPECT_EQ(tel.metrics().counter("engine.watchdog.recoveries")->value(), 1u);

  const auto& wrep = engine.report(wedged.value());
  EXPECT_EQ(wrep.outcome, SessionOutcome::kQuarantined);
  EXPECT_EQ(wrep.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(wrep.status.message().find("quarantined"), std::string::npos);
  EXPECT_TRUE(stuck_source.stuck());

  const auto& frep = engine.report(fine.value());
  EXPECT_EQ(frep.outcome, SessionOutcome::kCompleted)
      << "the engine must keep serving sessions next to the quarantined one";
  common::Crc32 clean;
  for (std::uint64_t i = 0; i < kUnits; ++i) clean.update(unit_payload(i));
  EXPECT_EQ(good_rig.crc(), clean.value());
}

// ---------------------------------------------------------------------------
// Teardown races: cancel / destruction while a retry backoff is pending
// ---------------------------------------------------------------------------

TEST(FaultRaces, CancelDuringRetryBackoffDrainsCleanly) {
  for (int round = 0; round < 6; ++round) {
    IoContext io;
    // Always-transient device: the session lives inside the retry loop.
    auto always_flaky = [](std::uint64_t i) -> Result<Payload> {
      return Result<Payload>(
          Status(StatusCode::kUnavailable, "flaky " + std::to_string(i)));
    };
    RetryPolicy retry = fast_retry(64);  // long budget: cancel wins the race
    retry.initial_backoff_us = 200.0;
    retry.max_backoff_us = 200.0;
    // Declared before the source: the source's pending retry may still
    // fire its failure handler while quiescing, and that handler needs
    // a live engine. Destruction order is source -> engine -> context.
    EngineOptions eopts;
    eopts.workers = 2;
    Engine engine(eopts);
    BoundaryRig rig;
    AsyncSource source(io, TryReadFn(always_flaky), retry, 2);
    source.bind(rig.g, rig.src);
    ASSERT_TRUE(engine.start().is_ok());
    auto sid = engine.submit(rig.g, {0, 1}, 8);
    ASSERT_TRUE(sid.is_ok());
    wire(engine, sid.value(), source, rig.src, 8);
    std::this_thread::sleep_for(std::chrono::microseconds(100 + 150 * round));
    engine.cancel(sid.value());
    ASSERT_TRUE(engine.wait().is_ok()) << "round " << round;
    const auto outcome = engine.report(sid.value()).outcome;
    EXPECT_TRUE(outcome == SessionOutcome::kCancelled ||
                outcome == SessionOutcome::kFailed)
        << "round " << round << ": " << to_string(outcome);
    // ~AsyncSource now quiesces through the pending backoff; ~Engine and
    // ~IoContext follow. TSan owns the actual assertions here.
  }
}

// A sink's write retries can outlive Engine::wait(): the graph drains
// (firings just bank payloads in the adapter), the session retires, and
// the device-side retry timer is still pending when everything is torn
// down. The adapter destructors must quiesce through that retry — whose
// exhaustion handler calls fail_session on an already-retired session —
// before the engine goes away.
TEST(FaultRaces, EngineTeardownDuringSinkRetryBackoffQuiesces) {
  for (int round = 0; round < 6; ++round) {
    IoContext io;
    EngineOptions eopts;
    eopts.workers = 2;
    Engine engine(eopts);
    TaskGraph g{"teardown-rig"};
    const TaskId src = g.add_task(task("src", 10));
    const TaskId snk = g.add_task(task("snk", 10));
    ASSERT_TRUE(g.add_edge(src, snk, 32).is_ok());

    AsyncSource source(
        io,
        TryReadFn(
            [](std::uint64_t i) { return Result<Payload>(unit_payload(i)); }),
        fast_retry(), /*depth=*/8);
    source.bind(g, src);
    // Unit 3 never writes: 16 attempts x 200us of backoff keeps the
    // retry machine alive long past wait().
    RetryPolicy retry = fast_retry(16);
    retry.initial_backoff_us = 200.0;
    retry.max_backoff_us = 200.0;
    AsyncSink sink(io,
                   TryWriteFn([](std::uint64_t i, const Payload&) {
                     if (i == 3) {
                       return Status(StatusCode::kUnavailable, "flaky write");
                     }
                     return Status::ok();
                   }),
                   retry, /*depth=*/8);
    sink.bind(g, snk);

    ASSERT_TRUE(engine.start().is_ok());
    auto sid = engine.submit(g, {0, 1}, 6);
    ASSERT_TRUE(sid.is_ok());
    wire(engine, sid.value(), source, src, 6);
    sink.set_failure_handler(
        [&engine, s = sid.value()](std::uint64_t unit, const Status& status) {
          engine.fail_session(s, unit, status);  // retired session: no-op
        });
    sink.set_error_observer([&engine, s = sid.value()](std::uint64_t unit,
                                                       const Status& status,
                                                       bool will_retry) {
      engine.record_io_error(s, unit, status, will_retry);
    });
    auto swaker = engine.task_waker(sid.value(), snk);
    ASSERT_TRUE(swaker.is_ok());
    sink.attach(std::move(swaker.value()));

    ASSERT_TRUE(engine.wait().is_ok())
        << "round " << round << ": graph drain must not wait on the device";
    std::this_thread::sleep_for(std::chrono::microseconds(150 * round));
    // No flush(): destruction order is sink first (quiesces through the
    // pending retry while the engine is still alive to take the no-op
    // fail_session), then source, then engine, then context.
  }
}

// ---------------------------------------------------------------------------
// Chaos matrix: seeded schedules x worker counts, exact accounting
// ---------------------------------------------------------------------------

struct ChaosRun {
  SessionOutcome faulted_outcome;
  SessionOutcome clean_outcome;
  std::uint32_t faulted_crc = 0;
  std::uint32_t clean_crc = 0;
  FaultStats injector_stats;
  std::uint64_t report_errors = 0;
  std::uint64_t report_retries = 0;
  std::uint64_t adapter_errors = 0;
  std::uint64_t adapter_retries = 0;
  std::uint64_t counter_injected = 0;
  std::uint64_t counter_retries = 0;
};

ChaosRun chaos_run(std::uint64_t seed, std::size_t workers) {
  TelemetryOptions topts;
  topts.collect_period_ms = 0;
  topts.unit_sample_period = 0;
  topts.watchdog_periods = 0;
  Telemetry tel(topts);
  IoContextOptions iopts;
  iopts.telemetry = &tel;
  IoContext io(iopts);
  FaultInjector injector(seed, &tel);

  TranscodeSessionConfig faulted;
  faulted.width = 32;
  faulted.height = 32;
  faulted.frames = 6;
  faulted.seed = 11;
  faulted.fault = &injector;
  faulted.read_faults.read_error_rate = 0.25;
  faulted.read_faults.burst_length = 2;
  faulted.read_faults.latency_spike_rate = 0.1;
  faulted.read_faults.latency_spike_us = 100.0;
  faulted.write_faults.write_error_rate = 0.15;
  faulted.retry = fast_retry(4);
  faulted.retry.seed = seed;

  TranscodeSessionConfig clean;
  clean.width = 32;
  clean.height = 32;
  clean.frames = 6;
  clean.seed = 11;

  auto made_faulted = make_file_transcode_session(io, faulted);
  auto made_clean = make_file_transcode_session(io, clean);
  EXPECT_TRUE(made_faulted.is_ok());
  EXPECT_TRUE(made_clean.is_ok());
  FileTranscodeSession sf = std::move(made_faulted.value());
  FileTranscodeSession sc = std::move(made_clean.value());

  EngineOptions eopts;
  eopts.workers = workers;
  eopts.telemetry = &tel;
  Engine engine(eopts);
  EXPECT_TRUE(engine.start().is_ok());
  auto fid = sf.submit_to(engine, round_robin_mapping(sf.graph, workers));
  auto cid = sc.submit_to(engine, round_robin_mapping(sc.graph, workers));
  EXPECT_TRUE(fid.is_ok());
  EXPECT_TRUE(cid.is_ok());
  EXPECT_TRUE(engine.wait().is_ok()) << "chaos must never wedge the engine";
  sf.finish();
  sc.finish();

  ChaosRun out;
  const auto& frep = engine.report(fid.value());
  const auto& crep = engine.report(cid.value());
  out.faulted_outcome = frep.outcome;
  out.clean_outcome = crep.outcome;
  out.faulted_crc = sf.state->out_crc;
  out.clean_crc = sc.state->out_crc;
  out.injector_stats = injector.total_stats();
  out.report_errors = frep.io_errors.errors;
  out.report_retries = frep.io_errors.retries;
  const auto sstats = sf.source->stats();
  const auto kstats = sf.sink->stats();
  out.adapter_errors = sstats.errors + kstats.errors;
  out.adapter_retries = sstats.retries + kstats.retries;
  out.counter_injected = tel.metrics().counter("fault.injected")->value();
  out.counter_retries = tel.metrics().counter("io.retries")->value();
  return out;
}

TEST(ChaosMatrix, SeededSchedulesAreWorkerCountInvariantWithExactAccounting) {
  const std::uint64_t seeds[] = {101, 202, 303};
  // Reference clean bitstream, once.
  const std::uint32_t reference_clean = chaos_run(0xdead, 1).clean_crc;

  for (const std::uint64_t seed : seeds) {
    const ChaosRun one = chaos_run(seed, 1);
    const ChaosRun four = chaos_run(seed, 4);

    // Determinism: the fault schedule and its consequences must not
    // depend on worker count.
    EXPECT_EQ(one.faulted_outcome, four.faulted_outcome) << "seed " << seed;
    EXPECT_EQ(one.injector_stats.transient_errors,
              four.injector_stats.transient_errors)
        << "seed " << seed;
    EXPECT_EQ(one.injector_stats.ops, four.injector_stats.ops)
        << "seed " << seed;
    EXPECT_EQ(one.adapter_errors, four.adapter_errors) << "seed " << seed;
    EXPECT_EQ(one.adapter_retries, four.adapter_retries) << "seed " << seed;
    if (one.faulted_outcome == SessionOutcome::kCompleted) {
      EXPECT_EQ(one.faulted_crc, four.faulted_crc)
          << "seed " << seed << ": recovered output must be bit-identical";
    }
    // Non-faulted co-resident sessions are byte-identical to a clean run.
    EXPECT_EQ(one.clean_outcome, SessionOutcome::kCompleted);
    EXPECT_EQ(four.clean_outcome, SessionOutcome::kCompleted);
    EXPECT_EQ(one.clean_crc, reference_clean) << "seed " << seed;
    EXPECT_EQ(four.clean_crc, reference_clean) << "seed " << seed;
    // Exact accounting: injector, adapters, session report, and
    // telemetry counters all tell the same story.
    for (const ChaosRun* r : {&one, &four}) {
      // The injector is the only error source here, so adapter stats
      // and telemetry counters must match it exactly. The session
      // report is a snapshot taken at graph drain: sink retries that
      // complete after retirement may trail it, so it only bounds.
      EXPECT_EQ(r->adapter_errors, r->injector_stats.transient_errors)
          << "seed " << seed;
      EXPECT_LE(r->report_errors, r->adapter_errors) << "seed " << seed;
      EXPECT_LE(r->report_retries, r->adapter_retries) << "seed " << seed;
      EXPECT_EQ(r->counter_injected, r->injector_stats.injected())
          << "seed " << seed;
      EXPECT_EQ(r->counter_retries, r->adapter_retries) << "seed " << seed;
      EXPECT_LE(r->adapter_retries, r->adapter_errors)
          << "every retry traces back to an injected transient";
    }
  }
}

// ---------------------------------------------------------------------------
// Graceful degradation under overload (sharded front-end)
// ---------------------------------------------------------------------------

mpsoc::Mapping chain_mapping(std::size_t tasks, std::size_t pes) {
  mpsoc::Mapping m(tasks);
  for (std::size_t t = 0; t < tasks; ++t) m[t] = t % pes;
  return m;
}

TEST(Overload, DegradeHooksFireThenEarliestDeadlineSessionIsShed) {
  ShardedEngineOptions opts;
  opts.shards = 1;
  opts.max_sessions_per_shard = 2;
  opts.engine.workers = 1;
  opts.overload.degrade_watermark = 0.5;  // early warning at half capacity
  opts.overload.shed_earliest_deadline = true;
  opts.overload.shed_grace = std::chrono::milliseconds(500);
  ShardedEngine sharded(opts);
  ASSERT_TRUE(sharded.start().is_ok());

  auto near_miss = make_synthetic_chain(2, 20000.0);
  auto far_miss = make_synthetic_chain(2, 20000.0);
  auto newcomer = make_synthetic_chain(2, 200.0);

  std::atomic<int> near_degraded{0};
  std::atomic<int> far_degraded{0};
  SessionOptions near_opts;
  near_opts.timeout = std::chrono::seconds(2);  // closest to missing
  near_opts.on_degrade = [&near_degraded](std::size_t) { ++near_degraded; };
  SessionOptions far_opts;
  far_opts.timeout = std::chrono::seconds(60);
  far_opts.on_degrade = [&far_degraded](std::size_t) { ++far_degraded; };

  auto near_t = sharded.submit(near_miss.graph, chain_mapping(2, 1),
                               200'000'000, near_opts);
  auto far_t = sharded.submit(far_miss.graph, chain_mapping(2, 1),
                              200'000'000, far_opts);
  ASSERT_TRUE(near_t.is_ok());
  ASSERT_TRUE(far_t.is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // Third arrival: capacity is 2, both slots taken -> degrade hooks have
  // fired, the near-deadline session is shed, the newcomer admitted.
  auto new_t = sharded.submit(newcomer.graph, chain_mapping(2, 1), 10);
  ASSERT_TRUE(new_t.is_ok())
      << "shedding must make room: " << new_t.status().to_text();
  EXPECT_GE(near_degraded.load(), 1) << "degrade hook must have fired";
  EXPECT_LE(near_degraded.load(), 1) << "and at most once per session";
  EXPECT_EQ(far_degraded.load(), 1);

  sharded.cancel_all();
  ASSERT_TRUE(sharded.wait().is_ok());

  EXPECT_EQ(sharded.report(near_t.value()).outcome, SessionOutcome::kCancelled)
      << "the earliest-deadline session is the shed victim";
  const auto stats = sharded.stats();
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.degraded, 2u);
  EXPECT_EQ(stats.rejected, 0u) << "shedding replaced the rejection";
  EXPECT_EQ(stats.completed + stats.inflight, stats.accepted)
      << "admission books must balance after shed + cancel_all";
}

TEST(Overload, InertPolicyStillRejectsWithReason) {
  ShardedEngineOptions opts;
  opts.shards = 1;
  opts.max_sessions_per_shard = 1;
  opts.engine.workers = 1;
  ShardedEngine sharded(opts);
  ASSERT_TRUE(sharded.start().is_ok());
  auto endless = make_synthetic_chain(2, 20000.0);
  SessionOptions dl;
  dl.timeout = std::chrono::seconds(30);
  auto first =
      sharded.submit(endless.graph, chain_mapping(2, 1), 200'000'000, dl);
  ASSERT_TRUE(first.is_ok());
  auto second = make_synthetic_chain(2, 200.0);
  auto t2 = sharded.submit(second.graph, chain_mapping(2, 1), 10);
  EXPECT_FALSE(t2.is_ok()) << "default policy must keep reject semantics";
  EXPECT_EQ(t2.status().code(), StatusCode::kResourceExhausted);
  const auto stats = sharded.stats();
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.degraded, 0u);
  EXPECT_EQ(stats.rejected, 1u);
  sharded.cancel_all();
  ASSERT_TRUE(sharded.wait().is_ok());
}

// ---------------------------------------------------------------------------
// Block endpoints: multi-error summaries replace first-error-only status
// ---------------------------------------------------------------------------

TEST(BlockEndpoints, SinkTryWriteRecordsEverySinkErrorNotJustTheFirst) {
  fs::BlockDevice device(/*block_count=*/64, /*block_size=*/512);
  auto formatted = fs::FatVolume::format(device);
  ASSERT_TRUE(formatted.is_ok());
  fs::FatVolume volume = std::move(formatted.value());
  auto volume_mu = std::make_shared<std::mutex>();
  BlockFileSink sink(volume, volume_mu, "/out.bit");

  // Two good writes through the fallible path.
  EXPECT_TRUE(sink.try_write(0, unit_payload(0)).is_ok());
  EXPECT_TRUE(sink.try_write(1, unit_payload(1)).is_ok());
  EXPECT_TRUE(sink.status().is_ok());
  EXPECT_FALSE(sink.error_summary().any());

  // Exhaust the volume so appends start failing, then fail twice.
  Payload huge(static_cast<std::size_t>(device.block_count()) *
               device.block_size());
  std::uint64_t unit = 2;
  while (sink.try_write(unit, huge).is_ok() && unit < 64) ++unit;
  ASSERT_LT(unit, 64u) << "an over-capacity append must eventually fail";
  const auto failing_a = unit;
  EXPECT_FALSE(sink.try_write(failing_a + 1, huge).is_ok());

  const auto summary = sink.error_summary();
  EXPECT_EQ(summary.errors, 2u) << "both failures recorded, not just one";
  EXPECT_EQ(summary.first_unit, failing_a);
  EXPECT_EQ(summary.last_unit, failing_a + 1);
  EXPECT_FALSE(sink.status().is_ok()) << "legacy first-error status intact";
  // The legacy write() path records into the same summary.
  sink.write(failing_a + 2, huge);
  EXPECT_EQ(sink.error_summary().errors, 3u);
}

}  // namespace
