// Tests for the audio subsystem: filterbank, psychoacoustic model, bit
// allocation, the Fig. 2 subband codec, RPE-LTP, sources, and metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "audio/allocation.h"
#include "audio/filterbank.h"
#include "audio/metrics.h"
#include "audio/psycho.h"
#include "audio/rpe_ltp.h"
#include "audio/source.h"
#include "audio/subband_codec.h"
#include "common/mathutil.h"
#include "common/rng.h"

namespace mmsoc::audio {
namespace {

using common::Rng;

// --------------------------------------------------------------- filterbank

TEST(Filterbank, PerfectReconstructionWithOneBlockDelay) {
  Rng rng(1);
  const int blocks = 40;
  std::vector<double> input(static_cast<std::size_t>(blocks) * kSubbands);
  for (auto& v : input) v = rng.next_double_in(-1.0, 1.0);

  SubbandAnalyzer an;
  SubbandSynthesizer sy;
  std::vector<double> output;
  for (int b = 0; b < blocks; ++b) {
    const auto bands = an.analyze(std::span<const double, kSubbands>(
        input.data() + b * kSubbands, kSubbands));
    const auto pcm = sy.synthesize(bands);
    output.insert(output.end(), pcm.begin(), pcm.end());
  }
  // Reconstruction is exact after the kSubbands-sample TDAC delay.
  double max_err = 0.0;
  for (std::size_t i = kSubbands; i + kSubbands < output.size(); ++i) {
    max_err = std::max(max_err, std::abs(output[i] - input[i - kSubbands]));
  }
  EXPECT_LT(max_err, 1e-10);
}

TEST(Filterbank, ToneLandsInCorrectSubband) {
  // A tone at the center of subband k concentrates energy there.
  const double fs = 32000.0;
  const int target_band = 5;
  const double hz = (target_band + 0.5) * fs / (2.0 * kSubbands);
  const auto tone = make_tone(kSubbands * 64, fs, hz, 0.9);

  SubbandAnalyzer an;
  std::array<double, kSubbands> energy{};
  for (int b = 0; b < 64; ++b) {
    const auto bands = an.analyze(std::span<const double, kSubbands>(
        tone.data() + b * kSubbands, kSubbands));
    for (int k = 0; k < kSubbands; ++k)
      energy[static_cast<std::size_t>(k)] +=
          bands[static_cast<std::size_t>(k)] * bands[static_cast<std::size_t>(k)];
  }
  int peak = 0;
  for (int k = 1; k < kSubbands; ++k)
    if (energy[static_cast<std::size_t>(k)] > energy[static_cast<std::size_t>(peak)]) peak = k;
  EXPECT_EQ(peak, target_band);
  // Dominance: at least 10x over bands two away.
  EXPECT_GT(energy[target_band], 10.0 * energy[target_band + 2]);
}

TEST(Filterbank, SilenceInSilenceOut) {
  SubbandAnalyzer an;
  std::array<double, kSubbands> zeros{};
  const auto bands = an.analyze(std::span<const double, kSubbands>(zeros));
  for (const auto b : bands) EXPECT_DOUBLE_EQ(b, 0.0);
}

TEST(Filterbank, ResetClearsState) {
  Rng rng(2);
  std::array<double, kSubbands> block;
  for (auto& v : block) v = rng.next_double_in(-1, 1);
  SubbandAnalyzer a1, a2;
  a1.analyze(std::span<const double, kSubbands>(block));
  a1.reset();
  const auto r1 = a1.analyze(std::span<const double, kSubbands>(block));
  const auto r2 = a2.analyze(std::span<const double, kSubbands>(block));
  EXPECT_EQ(r1, r2);
}

// ------------------------------------------------------------------- psycho

TEST(Psycho, StrongToneRaisesNeighbourThreshold) {
  // The paper's masking claim (§4), directly: a strong masker raises the
  // threshold in nearby bands far above the quiet threshold.
  const double fs = 32000.0;
  const PsychoModel model(fs);
  const auto tone = make_tone(1024, fs, 5250.0, 0.8);  // band 10 of 32
  const auto r = model.analyze(tone);
  const int band = 10;
  EXPECT_GT(r.threshold_db[band + 1],
            PsychoModel::absolute_threshold_db((band + 1.5) * fs / 64.0) + 20.0);
  // Threshold decays with distance from the masker.
  EXPECT_GT(r.threshold_db[band + 1], r.threshold_db[band + 4]);
}

TEST(Psycho, SilenceFallsBackToQuietThreshold) {
  const PsychoModel model(44100.0);
  const std::vector<double> silence(1024, 0.0);
  const auto r = model.analyze(silence);
  for (int k = 0; k < kSubbands; ++k) {
    EXPECT_LE(r.signal_db[static_cast<std::size_t>(k)], -80.0);
    // Threshold equals the absolute threshold (quiet curve).
    const double hz = (k + 0.5) * 44100.0 / 64.0;
    EXPECT_NEAR(r.threshold_db[static_cast<std::size_t>(k)],
                PsychoModel::absolute_threshold_db(hz), 1e-6);
  }
}

TEST(Psycho, ToneVsNoiseTonality) {
  const PsychoModel model(32000.0);
  const auto tone = model.analyze(make_tone(1024, 32000.0, 3000.0, 0.7));
  const auto noise = model.analyze(make_noise(1024, 0.7, 3));
  EXPECT_LT(tone.spectral_flatness, 0.1);
  EXPECT_GT(noise.spectral_flatness, 0.3);
}

TEST(Psycho, MaskedProbeHasNegativeSmr) {
  // A -60 dB probe 1.07x above a full-scale masker is inaudible; its
  // band's SMR must be dominated by the masker's spread, i.e. the probe
  // band needs no bits. We check the probe band's threshold exceeds the
  // probe level.
  const double fs = 32000.0;
  const PsychoModel model(fs);
  const double masker_hz = 5250.0;  // band 10
  const double probe_hz = 6250.0;   // band 12
  const auto sig = make_masking_pair(1024, fs, masker_hz, probe_hz, 0.001);
  const auto r = model.analyze(sig);
  EXPECT_LT(r.smr_db[12], r.smr_db[10]);  // probe band far more masked
}

TEST(Psycho, AbsoluteThresholdShape) {
  // Most sensitive region near 3-4 kHz; rises steeply at both extremes.
  const double at100 = PsychoModel::absolute_threshold_db(100.0);
  const double at3500 = PsychoModel::absolute_threshold_db(3500.0);
  const double at16000 = PsychoModel::absolute_threshold_db(16000.0);
  EXPECT_LT(at3500, at100);
  EXPECT_LT(at3500, at16000);
}

// --------------------------------------------------------------- allocation

TEST(Allocation, MaskedBandsGetZeroBits) {
  std::array<double, kSubbands> smr{};
  smr.fill(-10.0);  // everything masked
  smr[3] = 30.0;
  smr[7] = 12.0;
  const auto alloc = allocate_bits(smr, 200, 1);
  for (int k = 0; k < kSubbands; ++k) {
    if (k == 3 || k == 7) {
      EXPECT_GT(alloc[static_cast<std::size_t>(k)], 0);
    } else {
      EXPECT_EQ(alloc[static_cast<std::size_t>(k)], 0);
    }
  }
}

TEST(Allocation, HigherSmrGetsMoreBits) {
  std::array<double, kSubbands> smr{};
  smr[0] = 40.0;
  smr[1] = 20.0;
  smr[2] = 5.0;
  const auto alloc = allocate_bits(smr, 60, 1);
  EXPECT_GE(alloc[0], alloc[1]);
  EXPECT_GE(alloc[1], alloc[2]);
}

TEST(Allocation, RespectsBitPool) {
  std::array<double, kSubbands> smr{};
  smr.fill(60.0);
  const int pool = 37;
  const auto alloc = allocate_bits(smr, pool, 1);
  int used = 0;
  for (const auto b : alloc) used += b;
  EXPECT_LE(used, pool);
}

TEST(Allocation, SamplesPerBandScalesCost) {
  std::array<double, kSubbands> smr{};
  smr.fill(60.0);
  const auto cheap = allocate_bits(smr, 120, 1);
  const auto costly = allocate_bits(smr, 120, 12);
  int cheap_bits = 0, costly_bits = 0;
  for (const auto b : cheap) cheap_bits += b;
  for (const auto b : costly) costly_bits += b;
  EXPECT_GT(cheap_bits, costly_bits);
  EXPECT_LE(costly_bits * 12, 120);
}

TEST(Allocation, StopsWhenEverythingSatisfied) {
  std::array<double, kSubbands> smr{};
  smr[0] = 11.0;  // needs 2 bits (12.04 dB)
  const auto alloc = allocate_bits(smr, 10000, 1);
  EXPECT_EQ(alloc[0], 2);
  EXPECT_GE(worst_mnr_db(smr, alloc), 0.0);
}

TEST(Allocation, CapsAtMaxBits) {
  std::array<double, kSubbands> smr{};
  smr[0] = 500.0;  // insatiable
  const auto alloc = allocate_bits(smr, 10000, 1);
  EXPECT_EQ(alloc[0], kMaxBitsPerSample);
}

// ------------------------------------------------------------ subband codec

AudioEncoderConfig codec_config(double bitrate = 192000.0, bool psycho = true) {
  AudioEncoderConfig c;
  c.sample_rate = 32000.0;
  c.bitrate_bps = bitrate;
  c.use_psycho = psycho;
  return c;
}

TEST(SubbandCodec, RoundTripQualityOnMusic) {
  const auto cfg = codec_config(256000.0);
  SubbandEncoder enc(cfg);
  SubbandDecoder dec;
  const auto music = make_music(kGranuleSamples * 24, cfg.sample_rate, 5);

  std::vector<double> decoded;
  for (int g = 0; g < 24; ++g) {
    const auto e = enc.encode(std::span<const double, kGranuleSamples>(
        music.data() + g * kGranuleSamples, kGranuleSamples));
    auto d = dec.decode(e.bytes);
    ASSERT_TRUE(d.is_ok());
    decoded.insert(decoded.end(), d.value().samples.begin(),
                   d.value().samples.end());
  }
  // Account for the filterbank's one-block delay.
  std::vector<double> ref(music.begin(),
                          music.end() - kSubbands);
  std::vector<double> test(decoded.begin() + kSubbands, decoded.end());
  const double q = snr_db(std::span<const double>(ref).subspan(kGranuleSamples),
                          std::span<const double>(test).subspan(kGranuleSamples));
  EXPECT_GT(q, 15.0);  // comfortably intelligible subband coding
}

TEST(SubbandCodec, AncillaryDataRoundTrip) {
  SubbandEncoder enc(codec_config());
  SubbandDecoder dec;
  const auto music = make_music(kGranuleSamples, 32000.0, 6);
  const std::vector<std::uint8_t> anc = {0xDE, 0xAD, 0xBE, 0xEF, 0x42};
  const auto e = enc.encode(
      std::span<const double, kGranuleSamples>(music.data(), kGranuleSamples),
      anc);
  auto d = dec.decode(e.bytes);
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().ancillary, anc);
}

TEST(SubbandCodec, HigherBitrateBetterQuality) {
  const auto music = make_music(kGranuleSamples * 16, 32000.0, 7);
  auto run = [&](double bitrate) {
    SubbandEncoder enc(codec_config(bitrate));
    SubbandDecoder dec;
    std::vector<double> decoded;
    for (int g = 0; g < 16; ++g) {
      const auto e = enc.encode(std::span<const double, kGranuleSamples>(
          music.data() + g * kGranuleSamples, kGranuleSamples));
      auto d = dec.decode(e.bytes);
      decoded.insert(decoded.end(), d.value().samples.begin(),
                     d.value().samples.end());
    }
    std::vector<double> ref(music.begin(), music.end() - kSubbands);
    std::vector<double> test(decoded.begin() + kSubbands, decoded.end());
    return snr_db(std::span<const double>(ref).subspan(kGranuleSamples),
                  std::span<const double>(test).subspan(kGranuleSamples));
  };
  EXPECT_GT(run(320000.0), run(96000.0) + 3.0);
}

TEST(SubbandCodec, FrameSizeTracksBitrate) {
  const auto music = make_music(kGranuleSamples, 32000.0, 8);
  for (const double rate : {64000.0, 128000.0, 256000.0}) {
    SubbandEncoder enc(codec_config(rate));
    const auto e = enc.encode(std::span<const double, kGranuleSamples>(
        music.data(), kGranuleSamples));
    const double granule_seconds = kGranuleSamples / 32000.0;
    const double budget_bits = rate * granule_seconds;
    EXPECT_LT(static_cast<double>(e.bytes.size()) * 8, budget_bits * 1.15)
        << "rate " << rate;
  }
}

TEST(SubbandCodec, CorruptSyncRejected) {
  SubbandEncoder enc(codec_config());
  const auto music = make_music(kGranuleSamples, 32000.0, 9);
  auto e = enc.encode(std::span<const double, kGranuleSamples>(
      music.data(), kGranuleSamples));
  e.bytes[0] ^= 0xFF;
  SubbandDecoder dec;
  EXPECT_FALSE(dec.decode(e.bytes).is_ok());
}

TEST(SubbandCodec, TruncatedFrameRejected) {
  SubbandEncoder enc(codec_config());
  const auto music = make_music(kGranuleSamples, 32000.0, 10);
  auto e = enc.encode(std::span<const double, kGranuleSamples>(
      music.data(), kGranuleSamples));
  e.bytes.resize(e.bytes.size() / 4);
  SubbandDecoder dec;
  EXPECT_FALSE(dec.decode(e.bytes).is_ok());
}

TEST(SubbandCodec, StageOpsPopulated) {
  SubbandEncoder enc(codec_config());
  const auto music = make_music(kGranuleSamples, 32000.0, 11);
  const auto e = enc.encode(std::span<const double, kGranuleSamples>(
      music.data(), kGranuleSamples));
  EXPECT_GT(e.ops.mapper_macs, 0u);
  EXPECT_GT(e.ops.psycho_ops, 0u);
  EXPECT_GT(e.ops.quant_ops, 0u);
  EXPECT_EQ(e.ops.packer_bits, e.bytes.size() * 8);
}

TEST(SubbandCodec, PsychoModelStarvesMaskedProbeBand) {
  // §4: masked components can be dropped. A -54 dB probe two bands above
  // a near-full-scale masker is inaudible. With the model on, its band
  // must get no bits at a tight budget; a power-only allocator (model
  // off) wastes bits on it because its power is well above the floor.
  const double fs = 32000.0;
  const double masker_hz = 5250.0;  // band 10
  const double probe_hz = 6250.0;   // band 12
  const auto sig = make_masking_pair(static_cast<std::size_t>(kGranuleSamples),
                                     fs, masker_hz, probe_hz, 0.002);
  // 48 kbit/s: tight enough that masking decisions bind (at generous
  // rates the allocator legitimately spends spare margin everywhere).
  SubbandEncoder with(codec_config(48000.0, true));
  SubbandEncoder without(codec_config(48000.0, false));
  const auto ew = with.encode(std::span<const double, kGranuleSamples>(
      sig.data(), kGranuleSamples));
  const auto eo = without.encode(std::span<const double, kGranuleSamples>(
      sig.data(), kGranuleSamples));
  const int probe_band = 12;
  EXPECT_EQ(ew.allocation[probe_band], 0);
  EXPECT_GT(eo.allocation[probe_band], 0);
  // Both must still transmit the masker band.
  EXPECT_GT(ew.allocation[10], 0);
  EXPECT_GT(eo.allocation[10], 0);
}

// ----------------------------------------------------------------- rpe-ltp

TEST(RpeLtp, FrameSizeIsFixed) {
  RpeLtpEncoder enc;
  const auto speech = to_pcm16(make_speech(kGsmFrameSamples, 8000.0, 1));
  const auto bytes = enc.encode(std::span<const std::int16_t, kGsmFrameSamples>(
      speech.data(), kGsmFrameSamples));
  EXPECT_EQ(bytes.size(), kGsmFrameBytes);
}

TEST(RpeLtp, SpeechRoundTripIntelligible) {
  RpeLtpEncoder enc;
  RpeLtpDecoder dec;
  const std::size_t frames = 25;  // 0.5 s
  const auto speech = make_speech(frames * kGsmFrameSamples, 8000.0, 2);
  const auto pcm = to_pcm16(speech);

  std::vector<double> decoded;
  for (std::size_t f = 0; f < frames; ++f) {
    const auto bytes = enc.encode(std::span<const std::int16_t, kGsmFrameSamples>(
        pcm.data() + f * kGsmFrameSamples, kGsmFrameSamples));
    auto d = dec.decode(bytes);
    ASSERT_TRUE(d.is_ok());
    for (const auto v : d.value()) decoded.push_back(static_cast<double>(v) / 32767.0);
  }
  // Parametric speech coding: expect positive segmental SNR (GSM-FR
  // achieves ~8-12 dB segSNR on speech; our simplified coder less).
  const double seg = segmental_snr_db(speech, decoded, 160);
  EXPECT_GT(seg, 2.0);
}

TEST(RpeLtp, VoicedFramesExploitPitch) {
  // On strongly periodic input the LTP should do real work: decoded
  // energy must track input energy within a few dB.
  RpeLtpEncoder enc;
  RpeLtpDecoder dec;
  const auto tone = make_tone(kGsmFrameSamples * 10, 8000.0, 100.0, 0.45);
  const auto pcm = to_pcm16(tone);
  std::vector<double> decoded;
  for (int f = 0; f < 10; ++f) {
    const auto bytes = enc.encode(std::span<const std::int16_t, kGsmFrameSamples>(
        pcm.data() + static_cast<std::size_t>(f) * kGsmFrameSamples, kGsmFrameSamples));
    auto d = dec.decode(bytes);
    ASSERT_TRUE(d.is_ok());
    for (const auto v : d.value()) decoded.push_back(static_cast<double>(v) / 32767.0);
  }
  double in_e = 0.0, out_e = 0.0;
  // Skip the first two frames of adaptation.
  for (std::size_t i = 2 * kGsmFrameSamples; i < decoded.size(); ++i) {
    in_e += tone[i] * tone[i];
    out_e += decoded[i] * decoded[i];
  }
  ASSERT_GT(out_e, 0.0);
  const double ratio_db = 10.0 * std::log10(out_e / in_e);
  EXPECT_NEAR(ratio_db, 0.0, 4.0);
}

TEST(RpeLtp, BitrateIsGsmClass) {
  // 34 bytes / 20 ms = 13.6 kbps — the GSM full-rate class.
  const double bitrate = kGsmFrameBytes * 8 / 0.020;
  EXPECT_NEAR(bitrate, 13600.0, 1.0);
}

TEST(RpeLtp, ShortFrameRejected) {
  RpeLtpDecoder dec;
  const std::vector<std::uint8_t> tiny(5, 0);
  EXPECT_FALSE(dec.decode(tiny).is_ok());
}

TEST(RpeLtp, SilenceStaysQuiet) {
  RpeLtpEncoder enc;
  RpeLtpDecoder dec;
  const std::vector<std::int16_t> silence(kGsmFrameSamples, 0);
  for (int f = 0; f < 3; ++f) {
    const auto bytes = enc.encode(std::span<const std::int16_t, kGsmFrameSamples>(
        silence.data(), kGsmFrameSamples));
    auto d = dec.decode(bytes);
    ASSERT_TRUE(d.is_ok());
    for (const auto v : d.value()) EXPECT_LT(std::abs(v), 400);
  }
}

TEST(LevinsonDurbin, RecoversArProcess) {
  // Synthesize an AR(2) process and verify LPC recovers its poles.
  Rng rng(3);
  const double a1 = 1.2, a2 = -0.6;
  std::vector<double> x(4000, 0.0);
  for (std::size_t n = 2; n < x.size(); ++n) {
    x[n] = a1 * x[n - 1] + a2 * x[n - 2] + rng.next_gaussian();
  }
  std::array<double, 3> autocorr{};
  for (int lag = 0; lag <= 2; ++lag) {
    for (std::size_t n = static_cast<std::size_t>(lag); n < x.size(); ++n)
      autocorr[static_cast<std::size_t>(lag)] += x[n] * x[n - static_cast<std::size_t>(lag)];
  }
  std::array<double, 2> lpc{}, refl{};
  ASSERT_TRUE(levinson_durbin(autocorr, lpc, refl));
  EXPECT_NEAR(lpc[0], a1, 0.1);
  EXPECT_NEAR(lpc[1], a2, 0.1);
}

TEST(LevinsonDurbin, DegenerateSignalFails) {
  const std::array<double, 9> zeros{};
  std::array<double, kLpcOrder> lpc{}, refl{};
  EXPECT_FALSE(levinson_durbin(zeros, lpc, refl));
}

TEST(Lar, TransformPairRoundTrips) {
  for (double r = -0.95; r <= 0.95; r += 0.05) {
    EXPECT_NEAR(reflection_from_lar(lar_from_reflection(r)), r, 1e-9);
  }
}

// ------------------------------------------------------------------ sources

TEST(Source, SpeechHasVoicedAndUnvoicedStructure) {
  const double fs = 8000.0;
  const auto speech = make_speech(static_cast<std::size_t>(fs), fs, 4);
  // Voiced segment (first 150 ms): strong low-frequency periodicity.
  // Unvoiced segment (next 150 ms): higher zero-crossing rate.
  auto zcr = [&](std::size_t start, std::size_t len) {
    int crossings = 0;
    for (std::size_t i = start + 1; i < start + len; ++i) {
      if ((speech[i] >= 0) != (speech[i - 1] >= 0)) ++crossings;
    }
    return static_cast<double>(crossings) / static_cast<double>(len);
  };
  const auto seg = static_cast<std::size_t>(fs * 0.15);
  EXPECT_GT(zcr(seg, seg), 2.0 * zcr(0, seg));
}

TEST(Source, DeterministicForSeed) {
  EXPECT_EQ(make_speech(1000, 8000.0, 7), make_speech(1000, 8000.0, 7));
  EXPECT_NE(make_speech(1000, 8000.0, 7), make_speech(1000, 8000.0, 8));
}

TEST(Source, PcmConversionRoundTrip) {
  const auto x = make_music(500, 32000.0, 9);
  const auto back = from_pcm16(to_pcm16(x));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i], x[i], 1.0 / 32000.0);
  }
}

// ------------------------------------------------------------------ metrics

TEST(Metrics, SnrIdenticalCapped) {
  const auto x = make_tone(1000, 8000.0, 440.0);
  EXPECT_DOUBLE_EQ(snr_db(x, x), 99.0);
}

TEST(Metrics, SnrKnownValue) {
  std::vector<double> ref(1000, 1.0);
  std::vector<double> test(1000, 0.9);  // noise power 0.01 -> SNR 20 dB
  EXPECT_NEAR(snr_db(ref, test), 20.0, 1e-6);
}

TEST(Metrics, AlignmentFindsShift) {
  const auto x = make_music(2000, 32000.0, 10);
  std::vector<double> shifted(x.size() + 37, 0.0);
  std::copy(x.begin(), x.end(), shifted.begin() + 37);
  EXPECT_EQ(best_alignment(x, shifted, 64), 37u);
}

}  // namespace
}  // namespace mmsoc::audio
