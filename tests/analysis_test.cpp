// Tests for content analysis (§5): features, black-frame and color-burst
// commercial detectors, scene cuts, broadcast ground truth, audio
// classification.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/adaptive_gop.h"
#include "analysis/audio_features.h"
#include "analysis/broadcast.h"
#include "analysis/detectors.h"
#include "analysis/frame_features.h"
#include "audio/source.h"
#include "video/codec.h"
#include "video/metrics.h"
#include "video/source.h"

namespace mmsoc::analysis {
namespace {

std::vector<FrameFeatures> features_of(SyntheticBroadcast& bc) {
  std::vector<FrameFeatures> f;
  while (auto frame = bc.next()) f.push_back(extract_features(*frame));
  return f;
}

// ----------------------------------------------------------------- features

TEST(FrameFeatures, BlackFrameIsBlack) {
  const auto f = extract_features(video::Frame::black(64, 64));
  EXPECT_TRUE(is_black_frame(f));
  EXPECT_NEAR(f.mean_luma, 16.0, 0.01);
  EXPECT_NEAR(f.saturation, 0.0, 0.01);
}

TEST(FrameFeatures, ContentFrameIsNotBlack) {
  const auto frame =
      video::SyntheticVideo::render(64, 64, video::scene_high_detail(1), 0);
  EXPECT_FALSE(is_black_frame(extract_features(frame)));
}

TEST(FrameFeatures, HistogramCountsAllPixels) {
  const auto f = extract_features(
      video::SyntheticVideo::render(64, 64, video::scene_low_motion(2), 0));
  std::uint64_t total = 0;
  for (const auto c : f.luma_histogram) total += c;
  EXPECT_EQ(total, 64u * 64u);
}

TEST(FrameFeatures, HistogramDistanceProperties) {
  const auto a = extract_features(
      video::SyntheticVideo::render(64, 64, video::scene_low_motion(3), 0));
  const auto b = extract_features(video::Frame::black(64, 64));
  EXPECT_NEAR(histogram_distance(a, a), 0.0, 1e-12);
  EXPECT_GT(histogram_distance(a, b), 0.5);
  EXPECT_DOUBLE_EQ(histogram_distance(a, b), histogram_distance(b, a));
}

// ------------------------------------------------- black-frame detection

BroadcastSpec default_spec() {
  BroadcastSpec spec;
  spec.program_segments = 3;
  spec.program_frames = 80;
  spec.commercials_per_break = 2;
  spec.commercial_frames = 25;
  spec.separator_frames = 3;
  spec.seed = 7;
  return spec;
}

TEST(BlackFrameDetector, RecoversGroundTruthSegmentation) {
  auto spec = default_spec();
  SyntheticBroadcast bc(spec);
  const auto truth = bc.ground_truth();
  const auto feats = features_of(bc);

  BlackFrameCommercialDetector::Params p;
  p.max_commercial_frames = 40;  // commercials are 25 frames here
  const BlackFrameCommercialDetector det(p);
  const auto segs = det.segment(feats);

  const auto score = score_segments(segs, truth, bc.total_frames());
  EXPECT_GT(score.precision, 0.95);
  EXPECT_GT(score.recall, 0.95);
}

TEST(BlackFrameDetector, NoSeparatorsMeansOneProgram) {
  BroadcastSpec spec;
  spec.program_segments = 1;
  spec.program_frames = 60;
  SyntheticBroadcast bc(spec);
  const auto feats = features_of(bc);
  const auto segs = BlackFrameCommercialDetector().segment(feats);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].label, ContentLabel::kProgram);
  EXPECT_EQ(segs[0].begin, 0);
  EXPECT_EQ(segs[0].end, 60);
}

TEST(BlackFrameDetector, EmptyInput) {
  const auto segs = BlackFrameCommercialDetector().segment({});
  EXPECT_TRUE(segs.empty());
}

TEST(BlackFrameDetector, PlaybackRangesSkipCommercials) {
  auto spec = default_spec();
  SyntheticBroadcast bc(spec);
  const auto feats = features_of(bc);
  BlackFrameCommercialDetector::Params p;
  p.max_commercial_frames = 40;
  const auto segs = BlackFrameCommercialDetector(p).segment(feats);
  const auto play = playback_ranges(segs);
  // Exactly the program blocks survive.
  ASSERT_EQ(play.size(), 3u);
  int played = 0;
  for (const auto& s : play) {
    EXPECT_EQ(s.label, ContentLabel::kProgram);
    played += s.end - s.begin;
  }
  EXPECT_EQ(played, 3 * spec.program_frames);
}

// ------------------------------------------------- color-burst detection

TEST(ColorBurstDetector, SeparatesBwProgramFromColorCommercials) {
  auto spec = default_spec();
  spec.program_saturation = 0.0;     // black-and-white movie
  spec.commercial_saturation = 45.0; // color commercials
  SyntheticBroadcast bc(spec);
  const auto truth = bc.ground_truth();
  const auto feats = features_of(bc);

  const auto segs = ColorBurstCommercialDetector().segment(feats);
  const auto score = score_segments(segs, truth, bc.total_frames());
  // Color-burst cannot label the black separators, so slightly lower
  // precision than the black-frame detector is expected.
  EXPECT_GT(score.recall, 0.9);
  EXPECT_GT(score.precision, 0.8);
}

TEST(ColorBurstDetector, FailsOnColorPrograms) {
  // The historical heuristic breaks when the program itself is in color —
  // worth pinning down as a negative result (the paper calls it an
  // "assumption").
  auto spec = default_spec();
  spec.program_saturation = 45.0;  // color program
  SyntheticBroadcast bc(spec);
  const auto truth = bc.ground_truth();
  const auto feats = features_of(bc);
  const auto segs = ColorBurstCommercialDetector().segment(feats);
  const auto score = score_segments(segs, truth, bc.total_frames());
  EXPECT_LT(score.precision, 0.5);  // everything looks like a commercial
}

// ----------------------------------------------------------- scene cuts

TEST(SceneCutDetector, FindsSceneBoundaries) {
  std::vector<video::SceneParams> scenes = {video::scene_low_motion(1),
                                            video::scene_high_detail(99),
                                            video::scene_flat(55)};
  for (auto& s : scenes) s.frames = 20;
  scenes[1].brightness = 190.0;
  scenes[2].brightness = 70.0;
  video::SyntheticVideo src(64, 64, scenes, 0);
  std::vector<FrameFeatures> feats;
  while (auto f = src.next()) feats.push_back(extract_features(*f));

  const auto cuts = SceneCutDetector().detect(feats);
  // Expect cuts exactly at 0, 20, 40 (the detector may fire within 1).
  ASSERT_GE(cuts.size(), 3u);
  EXPECT_EQ(cuts[0], 0);
  EXPECT_NEAR(cuts[1], 20, 1);
  EXPECT_NEAR(cuts[2], 40, 1);
}

TEST(SceneCutDetector, QuietWithinScene) {
  std::vector<video::SceneParams> scenes = {video::scene_low_motion(5)};
  scenes[0].frames = 40;
  video::SyntheticVideo src(64, 64, scenes, 0);
  std::vector<FrameFeatures> feats;
  while (auto f = src.next()) feats.push_back(extract_features(*f));
  const auto cuts = SceneCutDetector().detect(feats);
  EXPECT_EQ(cuts.size(), 1u);  // only the initial boundary
}

// ----------------------------------------------------------- score math

TEST(Score, PerfectPredictionScoresOne) {
  const std::vector<Segment> truth = {{0, 10, ContentLabel::kProgram},
                                      {10, 20, ContentLabel::kCommercial}};
  const auto s = score_segments(truth, truth, 20);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1(), 1.0);
}

TEST(Score, MissingCommercialHurtsRecall) {
  const std::vector<Segment> truth = {{0, 10, ContentLabel::kCommercial},
                                      {10, 20, ContentLabel::kCommercial}};
  const std::vector<Segment> pred = {{0, 10, ContentLabel::kCommercial},
                                     {10, 20, ContentLabel::kProgram}};
  const auto s = score_segments(pred, truth, 20);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
}

// -------------------------------------------------------- audio analysis

TEST(AudioFeatures, SpeechVsMusicClassification) {
  const double fs = 16000.0;
  const auto speech = audio::make_speech(static_cast<std::size_t>(fs) * 2, fs, 11);
  const auto music = audio::make_music(static_cast<std::size_t>(fs) * 2, fs, 12);

  AudioFeatureExtractor ex(fs);
  const auto speech_stats = summarize(ex.analyze_all(speech));
  ex.reset();
  const auto music_stats = summarize(ex.analyze_all(music));

  EXPECT_EQ(classify(speech_stats), AudioClass::kSpeech);
  EXPECT_EQ(classify(music_stats), AudioClass::kMusic);
}

TEST(AudioFeatures, SilenceClassifiedAsSilence) {
  const std::vector<double> silence(8192, 0.0);
  AudioFeatureExtractor ex(16000.0);
  EXPECT_EQ(classify(summarize(ex.analyze_all(silence))), AudioClass::kSilence);
}

TEST(AudioFeatures, CentroidTracksToneFrequency) {
  AudioFeatureExtractor ex(16000.0);
  const auto low = ex.analyze_all(audio::make_tone(4096, 16000.0, 300.0));
  ex.reset();
  const auto high = ex.analyze_all(audio::make_tone(4096, 16000.0, 4000.0));
  ASSERT_FALSE(low.empty());
  ASSERT_FALSE(high.empty());
  EXPECT_NEAR(low[0].spectral_centroid, 300.0, 100.0);
  EXPECT_NEAR(high[0].spectral_centroid, 4000.0, 300.0);
}

TEST(AudioFeatures, ZcrHigherForNoiseThanTone) {
  AudioFeatureExtractor ex(16000.0);
  const auto tone = ex.analyze(audio::make_tone(1024, 16000.0, 200.0));
  const auto noise = ex.analyze(audio::make_noise(1024, 0.5, 13));
  EXPECT_GT(noise.zero_crossing_rate, 5.0 * tone.zero_crossing_rate);
}

TEST(AudioFeatures, FluxSpikesAtTransition) {
  const double fs = 16000.0;
  auto sig = audio::make_tone(2048, fs, 400.0);
  const auto noise = audio::make_noise(2048, 0.5, 14);
  sig.insert(sig.end(), noise.begin(), noise.end());
  AudioFeatureExtractor ex(fs, 1024);
  const auto frames = ex.analyze_all(sig);
  ASSERT_EQ(frames.size(), 4u);
  // Flux at the tone->noise boundary (frame 2) dwarfs within-tone flux.
  EXPECT_GT(frames[2].spectral_flux, 5.0 * frames[1].spectral_flux);
}

// ------------------------------------------------------- adaptive GOP

TEST(AdaptiveGop, FirstFrameAndCutsForceIntra) {
  AdaptiveGopController ctl;
  std::vector<video::SceneParams> scenes = {video::scene_low_motion(61),
                                            video::scene_high_detail(62)};
  scenes[0].frames = 15;
  scenes[1].frames = 15;
  scenes[1].brightness = 200.0;
  video::SyntheticVideo src(64, 64, scenes, 0);
  std::vector<bool> intra;
  while (auto f = src.next()) intra.push_back(ctl.observe(*f));
  ASSERT_EQ(intra.size(), 30u);
  EXPECT_TRUE(intra[0]);       // first frame
  EXPECT_TRUE(intra[15]);      // scene cut
  EXPECT_EQ(ctl.cuts_detected(), 1);
  // Frames inside a scene stay predicted.
  for (int i = 1; i < 15; ++i) EXPECT_FALSE(intra[static_cast<std::size_t>(i)]) << i;
}

TEST(AdaptiveGop, PeriodicRefreshWithoutCuts) {
  AdaptiveGopController::Params p;
  p.max_interval = 10;
  AdaptiveGopController ctl(p);
  std::vector<video::SceneParams> scenes = {video::scene_low_motion(63)};
  scenes[0].frames = 25;
  video::SyntheticVideo src(64, 64, scenes, 0);
  int intra_count = 0;
  while (auto f = src.next()) {
    if (ctl.observe(*f)) ++intra_count;
  }
  EXPECT_EQ(intra_count, 3);  // frames 0, 10, 20
  EXPECT_EQ(ctl.cuts_detected(), 0);
}

TEST(AdaptiveGop, SavesBitsAtSceneCutAtEqualQuality) {
  // The integration payoff: at a fixed quantizer, PSNR is set by the step
  // size either way, but predicting *across* a cut wastes bits on a
  // useless reference — coding the cut frame intra is strictly cheaper.
  std::vector<video::SceneParams> scenes = {video::scene_low_motion(64),
                                            video::scene_high_detail(65)};
  scenes[0].frames = 8;
  scenes[1].frames = 8;
  scenes[1].brightness = 210.0;
  video::SyntheticVideo src(64, 64, scenes, 0);
  std::vector<video::Frame> frames;
  while (auto f = src.next()) frames.push_back(*f);

  struct Outcome {
    std::size_t cut_bits = 0;
    std::size_t total_bits = 0;
    double mean_psnr = 0.0;
  };
  const auto run = [&](bool adaptive) {
    video::EncoderConfig cfg;
    cfg.width = 64;
    cfg.height = 64;
    cfg.gop_size = 1000;  // fixed GOP predicts across the cut
    cfg.qscale = 10;
    video::VideoEncoder enc(cfg);
    video::VideoDecoder dec;
    AdaptiveGopController ctl;
    Outcome out;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      const bool want_intra = ctl.observe(frames[i]);
      if (adaptive && want_intra) enc.request_intra();
      const auto e = enc.encode(frames[i]);
      auto d = dec.decode(e.bytes);
      out.total_bits += e.bytes.size() * 8;
      out.mean_psnr += video::psnr_luma(frames[i], d.value());
      if (i == 8) out.cut_bits = e.bytes.size() * 8;
    }
    out.mean_psnr /= static_cast<double>(frames.size());
    return out;
  };
  const auto fixed = run(false);
  const auto adaptive = run(true);
  EXPECT_LT(adaptive.cut_bits, fixed.cut_bits * 0.85);    // >= 15% cheaper
  EXPECT_LT(adaptive.total_bits, fixed.total_bits);       // cheaper overall
  EXPECT_GT(adaptive.mean_psnr, fixed.mean_psnr - 0.25);  // no quality loss
}

// ------------------------------------------------------------- broadcast

TEST(Broadcast, GroundTruthCoversAllFrames) {
  SyntheticBroadcast bc(default_spec());
  const auto& truth = bc.ground_truth();
  int covered = 0;
  for (const auto& s : truth) covered += s.end - s.begin;
  EXPECT_EQ(covered, bc.total_frames());
  // Segments are contiguous and ordered.
  for (std::size_t i = 1; i < truth.size(); ++i) {
    EXPECT_EQ(truth[i].begin, truth[i - 1].end);
  }
}

TEST(Broadcast, StreamsExactlyTotalFrames) {
  SyntheticBroadcast bc(default_spec());
  int n = 0;
  while (bc.next()) ++n;
  EXPECT_EQ(n, bc.total_frames());
}

}  // namespace
}  // namespace mmsoc::analysis
