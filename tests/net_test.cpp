// Tests for the small IP stack (§7): checksums, framing, lossy link,
// TCP-lite reliability, RTP streaming.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "net/checksum.h"
#include "net/link.h"
#include "net/packet.h"
#include "net/rtp.h"
#include "net/tcp_lite.h"

namespace mmsoc::net {
namespace {

using common::Rng;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next());
  return v;
}

// ----------------------------------------------------------------- checksum

TEST(Checksum, Rfc1071Example) {
  // Classic example from RFC 1071 §3: words 0001 f203 f4f5 f6f7.
  const std::uint8_t data[] = {0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7};
  EXPECT_EQ(internet_checksum({data, 8}), 0xFFFF - 0xDDF2 + 0 /* ~sum */);
  // Direct check: complement of 0xddf2 is 0x220d.
  EXPECT_EQ(internet_checksum({data, 8}), 0x220D);
}

TEST(Checksum, SelfVerifies) {
  auto data = random_bytes(100, 1);
  const auto sum = internet_checksum(data);
  data.push_back(static_cast<std::uint8_t>(sum >> 8));
  data.push_back(static_cast<std::uint8_t>(sum & 0xFF));
  EXPECT_TRUE(checksum_ok(data));
  data[10] ^= 0x40;
  EXPECT_FALSE(checksum_ok(data));
}

TEST(Checksum, OddLengthHandled) {
  const std::uint8_t data[] = {0xAB, 0xCD, 0xEF};
  const auto sum = internet_checksum({data, 3});
  std::vector<std::uint8_t> with_sum = {0xAB, 0xCD, 0xEF, 0x00};
  // Insert checksum at even offset: emulate by appending padded word.
  with_sum[3] = 0;  // pad byte
  with_sum.push_back(static_cast<std::uint8_t>(sum >> 8));
  with_sum.push_back(static_cast<std::uint8_t>(sum & 0xFF));
  EXPECT_TRUE(checksum_ok(with_sum));
}

// ------------------------------------------------------------------ packets

TEST(Udp, BuildParseRoundTrip) {
  const auto payload = random_bytes(200, 2);
  const auto pkt = build_udp_datagram(0x0A000001, 0x0A000002, 5004, 5005,
                                      payload);
  auto parsed = parse_udp_datagram(pkt);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_text();
  EXPECT_EQ(parsed.value().ip.src, 0x0A000001u);
  EXPECT_EQ(parsed.value().ip.dst, 0x0A000002u);
  EXPECT_EQ(parsed.value().src_port, 5004);
  EXPECT_EQ(parsed.value().dst_port, 5005);
  EXPECT_EQ(parsed.value().payload, payload);
}

TEST(Udp, EmptyPayload) {
  const auto pkt = build_udp_datagram(1, 2, 10, 20, {});
  auto parsed = parse_udp_datagram(pkt);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_TRUE(parsed.value().payload.empty());
}

TEST(Udp, HeaderCorruptionDetected) {
  auto pkt = build_udp_datagram(1, 2, 10, 20, random_bytes(50, 3));
  pkt[14] ^= 0x01;  // flip a bit in the source address
  EXPECT_FALSE(parse_udp_datagram(pkt).is_ok());
}

TEST(Udp, PayloadCorruptionDetected) {
  auto pkt = build_udp_datagram(1, 2, 10, 20, random_bytes(50, 4));
  pkt[kIpv4HeaderSize + kUdpHeaderSize + 25] ^= 0x80;
  EXPECT_FALSE(parse_udp_datagram(pkt).is_ok());
}

TEST(Udp, TruncationDetected) {
  auto pkt = build_udp_datagram(1, 2, 10, 20, random_bytes(50, 5));
  pkt.resize(pkt.size() - 10);
  EXPECT_FALSE(parse_udp_datagram(pkt).is_ok());
  EXPECT_FALSE(parse_udp_datagram({pkt.data(), 5}).is_ok());
}

// --------------------------------------------------------------------- link

TEST(LossyLink, DeliversInOrderAfterLatency) {
  LinkParams p;
  p.latency_us = 1000.0;
  p.bandwidth_bps = 1e9;
  LossyLink link(p);
  link.send(random_bytes(10, 6), 0.0);
  link.send(random_bytes(20, 7), 0.0);
  EXPECT_FALSE(link.receive(500.0).has_value());  // still in flight
  auto first = link.receive(2000.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->size(), 10u);
  auto second = link.receive(2000.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->size(), 20u);
}

TEST(LossyLink, BandwidthSerializesBackToBack) {
  LinkParams p;
  p.latency_us = 0.0;
  p.bandwidth_bps = 8e6;  // 1 byte/us
  LossyLink link(p);
  link.send(std::vector<std::uint8_t>(1000, 0), 0.0);  // finishes at 1000us
  link.send(std::vector<std::uint8_t>(1000, 0), 0.0);  // finishes at 2000us
  EXPECT_TRUE(link.receive(1001.0).has_value());
  EXPECT_FALSE(link.receive(1500.0).has_value());
  EXPECT_TRUE(link.receive(2001.0).has_value());
}

TEST(LossyLink, LossRateApproximatelyRespected) {
  LinkParams p;
  p.loss_probability = 0.25;
  p.seed = 11;
  LossyLink link(p);
  for (int i = 0; i < 2000; ++i) link.send(random_bytes(4, 8), 0.0);
  const double drop_rate = static_cast<double>(link.packets_dropped()) /
                           static_cast<double>(link.packets_sent());
  EXPECT_NEAR(drop_rate, 0.25, 0.03);
}

TEST(LossyLink, CorruptionFlipsExactlyOneBit) {
  LinkParams p;
  p.corrupt_probability = 1.0;
  p.latency_us = 0.0;
  LossyLink link(p);
  const auto original = random_bytes(64, 9);
  link.send(original, 0.0);
  auto got = link.receive(1e9);
  ASSERT_TRUE(got.has_value());
  int diff_bits = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    diff_bits += __builtin_popcount((*got)[i] ^ original[i]);
  }
  EXPECT_EQ(diff_bits, 1);
}

// ----------------------------------------------------------------- tcp-lite

TEST(Segment, SerializeParseRoundTrip) {
  Segment s;
  s.seq = 12345;
  s.ack = 999;
  s.is_ack = false;
  s.payload = random_bytes(77, 10);
  const auto bytes = s.serialize();
  auto parsed = Segment::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seq, s.seq);
  EXPECT_EQ(parsed->ack, s.ack);
  EXPECT_EQ(parsed->payload, s.payload);
}

TEST(Segment, CorruptionRejected) {
  Segment s;
  s.payload = random_bytes(40, 11);
  auto bytes = s.serialize();
  bytes[20] ^= 1;
  EXPECT_FALSE(Segment::parse(bytes).has_value());
}

TEST(TcpLite, LosslessTransferDeliversExactly) {
  const auto data = random_bytes(20000, 12);
  LinkParams link;
  link.latency_us = 1000.0;
  const auto result = run_bulk_transfer(data, link);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.delivered, data);
  EXPECT_EQ(result.retransmissions, 0u);
}

class TcpLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(TcpLossSweep, ReliableUnderLoss) {
  // The §7 reliability property: whatever the loss rate, the stream
  // delivers every byte, in order, exactly once.
  const auto data = random_bytes(8000, 13);
  LinkParams link;
  link.latency_us = 500.0;
  link.loss_probability = GetParam();
  link.seed = 17;
  const auto result = run_bulk_transfer(data, link, /*deadline_us=*/30e6);
  ASSERT_TRUE(result.complete) << "loss=" << GetParam();
  EXPECT_EQ(result.delivered, data);
  // At 2% loss this small transfer may get through untouched; only the
  // heavier rates are guaranteed to hit the retransmission path.
  if (GetParam() >= 0.05) {
    EXPECT_GT(result.retransmissions, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, TcpLossSweep,
                         ::testing::Values(0.0, 0.02, 0.05, 0.1, 0.2, 0.3));

TEST(TcpLite, CorruptionTreatedAsLoss) {
  const auto data = random_bytes(5000, 14);
  LinkParams link;
  link.latency_us = 500.0;
  link.corrupt_probability = 0.1;  // CRC catches these
  link.seed = 19;
  const auto result = run_bulk_transfer(data, link, 30e6);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.delivered, data);
  EXPECT_GT(result.retransmissions, 0u);
}

TEST(TcpLite, HigherLossSlowerCompletion) {
  const auto data = random_bytes(8000, 15);
  LinkParams clean;
  clean.latency_us = 500.0;
  LinkParams lossy = clean;
  lossy.loss_probability = 0.2;
  lossy.seed = 23;
  const auto fast = run_bulk_transfer(data, clean, 60e6);
  const auto slow = run_bulk_transfer(data, lossy, 60e6);
  ASSERT_TRUE(fast.complete);
  ASSERT_TRUE(slow.complete);
  EXPECT_GT(slow.completion_us, fast.completion_us);
}

// ---------------------------------------------------------------------- rtp

TEST(Rtp, PacketRoundTrip) {
  RtpSender sender;
  const auto payload = random_bytes(120, 16);
  const auto bytes = sender.packetize(payload, 9000);
  auto parsed = MediaPacket::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->sequence, 0);
  EXPECT_EQ(parsed->timestamp, 9000u);
  EXPECT_EQ(parsed->payload, payload);
  EXPECT_EQ(sender.next_sequence(), 1);
}

TEST(Rtp, InOrderPlayout) {
  RtpSender sender;
  RtpReceiver receiver(2);
  for (int i = 0; i < 5; ++i) {
    const auto payload = random_bytes(10, 20 + static_cast<std::uint64_t>(i));
    receiver.push(sender.packetize(payload, static_cast<std::uint32_t>(i * 100)),
                  i * 1000.0);
  }
  for (int i = 0; i < 5; ++i) {
    auto unit = receiver.pop();
    ASSERT_TRUE(unit.has_value());
    EXPECT_FALSE(unit->concealed);
    EXPECT_EQ(unit->sequence, i);
  }
  EXPECT_FALSE(receiver.pop().has_value());
}

TEST(Rtp, ReordersWithinJitterBuffer) {
  RtpSender sender;
  RtpReceiver receiver(3);
  std::vector<std::vector<std::uint8_t>> pkts;
  for (int i = 0; i < 4; ++i) {
    pkts.push_back(sender.packetize(random_bytes(8, 30 + static_cast<std::uint64_t>(i)),
                                    static_cast<std::uint32_t>(i * 100)));
  }
  // Deliver 0, 2, 1, 3.
  receiver.push(pkts[0], 0.0);
  receiver.push(pkts[2], 1.0);
  receiver.push(pkts[1], 2.0);
  receiver.push(pkts[3], 3.0);
  for (int i = 0; i < 4; ++i) {
    auto unit = receiver.pop();
    ASSERT_TRUE(unit.has_value());
    EXPECT_EQ(unit->sequence, i);
    EXPECT_FALSE(unit->concealed);
  }
}

TEST(Rtp, ConcealsLostPacketAfterGapAges) {
  RtpSender sender;
  RtpReceiver receiver(2);
  const auto p0 = sender.packetize(random_bytes(8, 40), 0);
  const auto p1 = sender.packetize(random_bytes(8, 41), 100);  // lost
  const auto p2 = sender.packetize(random_bytes(8, 42), 200);
  const auto p3 = sender.packetize(random_bytes(8, 43), 300);
  receiver.push(p0, 0.0);
  receiver.push(p2, 1.0);
  receiver.push(p3, 2.0);

  auto u0 = receiver.pop();
  ASSERT_TRUE(u0.has_value());
  EXPECT_EQ(u0->sequence, 0);

  auto u1 = receiver.pop();  // gap: 2 packets ahead >= playout delay
  ASSERT_TRUE(u1.has_value());
  EXPECT_TRUE(u1->concealed);
  EXPECT_EQ(u1->sequence, 1);
  EXPECT_EQ(receiver.lost(), 1u);

  auto u2 = receiver.pop();
  ASSERT_TRUE(u2.has_value());
  EXPECT_FALSE(u2->concealed);
  EXPECT_EQ(u2->sequence, 2);
}

TEST(Rtp, JitterEstimateRisesWithJitter) {
  const auto run = [](double jitter_us) {
    RtpSender sender;
    RtpReceiver receiver;
    Rng rng(50);
    double t = 0.0;
    for (int i = 0; i < 200; ++i) {
      t += 1000.0 + rng.next_double_in(0.0, jitter_us);
      receiver.push(sender.packetize(std::vector<std::uint8_t>(8, 0),
                                     static_cast<std::uint32_t>(i * 1000)),
                    t);
    }
    return receiver.jitter_us();
  };
  EXPECT_GT(run(800.0), 4.0 * run(10.0));
}

}  // namespace
}  // namespace mmsoc::net
